//! Sans-IO discovery engine — Algorithm 2 as a pure state machine.
//!
//! [`Engine`] owns the candidate state of one interactive discovery and
//! exposes exactly three verbs: [`Engine::next_question`] (Algorithm 2,
//! line 6), [`Engine::answer`] (lines 8–12) and [`Engine::outcome`]. No
//! oracle, socket, or prompt appears anywhere in the loop — answer *sources*
//! are drivers layered on top (the [`crate::discovery::Oracle`] adapters,
//! the `discover` CLI, the `setdisc-service` wire protocol), which is what
//! lets one implementation serve in-process evaluation, an interactive
//! terminal, and a concurrent network service with bit-identical question
//! sequences.
//!
//! The engine is generic over *how the collection is held* via
//! [`CollectionRef`]: a borrowed `&Collection` gives the classic scoped
//! [`crate::discovery::Session`], while an `Arc<Collection>` (or any other
//! cheaply-cloneable owning handle) gives [`OwnedSession`] — a `'static`,
//! `Send` value that can be parked in a session table and resumed from any
//! thread. Candidate state is a [`SubStorage`] (sorted id vector plus its
//! dense bitmap) and its 128-bit fingerprint; every narrowing step recycles
//! the storage buffers through the word-parallel
//! [`SubCollection::partition_into`], so steady-state stepping performs no
//! heap allocation beyond what the strategy itself needs.

use crate::collection::Collection;
use crate::discovery::{Answer, ConfirmingOracle, Oracle, Outcome};
use crate::entity::{EntityId, SetId};
use crate::error::{Result, SetDiscError};
use crate::strategy::{SelectionDetail, SelectionStrategy};
use crate::subcollection::{SubCollection, SubStorage};
use setdisc_util::{obs, Fingerprint, FxHashSet};
use std::mem;
use std::ops::Deref;
use std::sync::Arc;

/// A shared cache of per-view selections — the engine's pluggable hook for
/// the cross-session plan cache (`setdisc-plan`).
///
/// The engine consults [`Self::lookup`] before running its strategy and
/// calls [`Self::record`] with the strategy's answer after a miss, **only
/// when no entity is excluded** — a "don't know" reply changes what the
/// strategy may pick without changing the view's `(fingerprint, len)`
/// identity, so excluded-path selections are never served from or written
/// to the cache. Losslessness therefore requires exactly what the in-
/// strategy memos already require: implementations must only return
/// selections recorded for the *same* collection and the *same*
/// deterministic strategy configuration (attach nothing for randomized
/// strategies).
pub trait SelectionCache: Send + Sync {
    /// The cached selection for this view, or `None` on a miss.
    fn lookup(&self, view: &SubCollection<'_>) -> Option<EntityId>;

    /// Records a freshly computed selection for this view.
    fn record(&self, view: &SubCollection<'_>, detail: &SelectionDetail);

    /// [`Self::lookup`] plus where the served node came from. MUST be
    /// observably identical to one `lookup` call (same stats, stamps, and
    /// eviction effects) — the engine substitutes it for `lookup` only
    /// when provenance capture is armed, and armed/disarmed runs must
    /// leave bit-identical cache state. The default reports
    /// [`PlanOrigin::Unknown`] for caches that don't track origin.
    fn lookup_with_origin(&self, view: &SubCollection<'_>) -> Option<(EntityId, PlanOrigin)> {
        self.lookup(view).map(|e| (e, PlanOrigin::Unknown))
    }
}

/// Where a plan-cache hit's node was born.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PlanOrigin {
    /// Loaded from a persisted plan file (warm boot / precompute).
    File,
    /// Recorded online by a live session on this process.
    Online,
    /// The cache implementation doesn't track origin.
    Unknown,
}

impl PlanOrigin {
    /// Stable wire name for provenance JSON.
    pub fn name(self) -> &'static str {
        match self {
            PlanOrigin::File => "file",
            PlanOrigin::Online => "online",
            PlanOrigin::Unknown => "unknown",
        }
    }
}

/// How the plan cache participated in one selection.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PlanDisposition {
    /// Served from the cache; the origin tells file vs online.
    Hit(PlanOrigin),
    /// Probed and missed; the strategy ran and the result was recorded.
    Miss,
    /// Not consulted: the exclusion set was non-empty (cache contract).
    Bypassed,
    /// No cache is attached to this engine.
    Unattached,
}

impl PlanDisposition {
    /// Stable wire name for provenance JSON.
    pub fn name(self) -> &'static str {
        match self {
            PlanDisposition::Hit(PlanOrigin::File) => "hit_file",
            PlanDisposition::Hit(PlanOrigin::Online) => "hit_online",
            PlanDisposition::Hit(PlanOrigin::Unknown) => "hit",
            PlanDisposition::Miss => "miss",
            PlanDisposition::Bypassed => "bypassed",
            PlanDisposition::Unattached => "unattached",
        }
    }
}

/// The per-question "why" record [`Engine::next_question`] captures when
/// explain mode is armed ([`Engine::set_explain`]): every decision behind
/// the pick — ranked candidates with prune reasons, plan-cache
/// disposition and key, counting-kernel dispatch with predicted cost
/// drivers next to a measured pass time. Capture is strictly read-only
/// with respect to selection state; armed and disarmed runs produce
/// bit-identical questions, budgets, and plan-cache contents.
#[derive(Clone, Debug)]
pub struct Provenance {
    /// 1-based ordinal of the question this record explains.
    pub question: usize,
    /// The selected entity.
    pub entity: EntityId,
    /// Candidate sets in the view at selection time.
    pub candidates: usize,
    /// The view's content fingerprint — with `view_len`, the plan key.
    pub view_fp: Fingerprint,
    /// The view's length — the other half of the plan key.
    pub view_len: u32,
    /// How the plan cache participated.
    pub plan: PlanDisposition,
    /// The strategy's bound for the pick (0 on plan hits — the engine
    /// never recomputes it).
    pub bound: u64,
    /// Ranked candidates with Table-4 prune reasons; `None` on plan hits
    /// (the strategy never ran — the plan *is* the why).
    pub trace: Option<crate::strategy::SelectionTrace>,
    /// What the counting dispatcher would decide for this view under the
    /// fingerprint-pass factor, with its predicted cost drivers.
    pub dispatch: crate::subcollection::DispatchPreview,
    /// Wall time of one measured read-only counting pass over the view
    /// (the kernel `dispatch` chose), in nanoseconds.
    pub measured_count_ns: u64,
}

/// A cheaply-cloneable handle to an immutable [`Collection`].
///
/// Blanket-implemented for everything that derefs to a collection —
/// `&Collection`, `Arc<Collection>`, `Rc<Collection>`, and wrapper types
/// such as a service snapshot handle. The engine never mutates the
/// collection; the handle only decides the engine's lifetime story.
pub trait CollectionRef: Deref<Target = Collection> + Clone {}

impl<T: Deref<Target = Collection> + Clone> CollectionRef for T {}

/// The sans-IO discovery state machine (Algorithm 2 of the paper).
///
/// One engine = one discovery in progress: the candidate sets consistent
/// with every answer so far, the selection strategy Υ, the set of entities
/// excluded by "don't know" replies, and the question/answer transcript.
/// Drive it by alternating [`Self::next_question`] and [`Self::answer`]
/// until [`Self::is_resolved`]; or use the [`Self::run`] /
/// [`Self::run_bounded`] drivers when answers come from an [`Oracle`].
///
/// Two §6–§7 session modes extend the basic loop without changing it when
/// unused:
///
/// * **Backtracking** ([`Self::set_backtracking`]) — when answers contain
///   errors, a contradiction (empty candidate set) no longer has to end the
///   discovery: the engine unwinds its own question trail, flips one prior
///   answer (least-trusted first; see [`Self::answer_full`]), and replays
///   the rest, re-opening the mispruned branch (the §6 recovery procedure).
/// * **Multiple-choice questions** ([`Self::next_questions`] /
///   [`Self::answer_choice`]) — a ranked batch of entities presented as one
///   prompt (§7); the reply asserts one Yes and the implied Nos through the
///   ordinary [`Self::answer_full`] path, so mixed single/batch transcripts
///   stay well-defined.
pub struct Engine<C, S> {
    collection: C,
    store: SubStorage,
    fp: Fingerprint,
    spare_a: SubStorage,
    spare_b: SubStorage,
    strategy: S,
    plan: Option<Arc<dyn SelectionCache>>,
    excluded: FxHashSet<EntityId>,
    history: Vec<(EntityId, Answer)>,
    questions: usize,
    unknowns: usize,
    recover: Option<RecoverState>,
    /// Table-4 prune counters `(informative, evaluated)` from the most
    /// recent strategy-computed selection; `None` after a plan-cache hit or
    /// an excluded-path selection (where no detail is computed).
    last_detail: Option<(u32, u32)>,
    /// Whether [`Self::next_question`] captures a [`Provenance`] record.
    explain: bool,
    /// The most recent captured record (explain mode only).
    last_provenance: Option<Provenance>,
}

/// Backtracking bookkeeping, allocated only for sessions that opt in.
struct RecoverState {
    /// Candidate ids at the moment backtracking was enabled — the replay
    /// base. Enabling at construction time makes this the initial view.
    base: Vec<SetId>,
    /// History index at enablement; only entries from here on can flip.
    offset: usize,
    /// Per-answer confidence flags for `history[offset..]`.
    confident: Vec<bool>,
    /// The answers *as given* for `history[offset..]` — recovery always
    /// hypothesizes flip sets against these, never against an earlier
    /// recovery's rewrite, so one wrong guess cannot compound into an
    /// unrecoverable transcript.
    original: Vec<(EntityId, Answer)>,
    /// Flip sets already committed once (sorted index lists). A transcript
    /// that stops changing cannot cycle through them again, which bounds
    /// the total number of recoveries.
    used: FxHashSet<Vec<usize>>,
    /// Sets denied at confirmation ([`Engine::reject`]); filtered from
    /// every replay so a recovery never resurrects a refuted resolution.
    rejected: FxHashSet<SetId>,
    /// Successful recoveries so far.
    backtracks: usize,
}

/// Recovery searches flip sets of at most this many answers (§6 considers
/// up to two erroneous answers; beyond that the quadratic hypothesis space
/// stops paying for itself and the session closes as contradictory).
const MAX_FLIPS: usize = 2;

/// A discovery session that owns its collection snapshot — `'static`,
/// storable, and `Send` (given a `Send` strategy), as required to park
/// sessions in a concurrent service table.
pub type OwnedSession<S> = Engine<Arc<Collection>, S>;

impl<C: CollectionRef, S: SelectionStrategy> Engine<C, S> {
    /// Starts an engine over the supersets of `initial` (Algorithm 2,
    /// lines 1–4). An empty `initial` considers every set.
    pub fn new(collection: C, initial: &[EntityId], strategy: S) -> Self {
        let view = collection.supersets_of(initial);
        let fp = view.fingerprint();
        let store = view.into_storage();
        Self::from_parts(collection, store, fp, strategy)
    }

    /// Starts an engine over an explicit candidate id list (sorted and
    /// deduplicated here; panics on an id out of range, mirroring
    /// [`SubCollection::from_ids`]).
    pub fn with_candidates(collection: C, ids: Vec<SetId>, strategy: S) -> Self {
        let view = SubCollection::from_ids(collection.deref(), ids);
        let fp = view.fingerprint();
        let store = view.into_storage();
        Self::from_parts(collection, store, fp, strategy)
    }

    fn from_parts(collection: C, store: SubStorage, fp: Fingerprint, strategy: S) -> Self {
        Self {
            collection,
            store,
            fp,
            spare_a: SubStorage::default(),
            spare_b: SubStorage::default(),
            strategy,
            plan: None,
            excluded: FxHashSet::default(),
            history: Vec::new(),
            questions: 0,
            unknowns: 0,
            recover: None,
            last_detail: None,
            explain: false,
            last_provenance: None,
        }
    }

    /// The collection handle this engine snapshots.
    pub fn collection(&self) -> &C {
        &self.collection
    }

    /// Sorted ids of the candidate sets still consistent with every answer.
    #[inline]
    pub fn candidate_ids(&self) -> &[SetId] {
        &self.store.ids
    }

    /// Number of candidate sets remaining.
    #[inline]
    pub fn candidate_count(&self) -> usize {
        self.store.ids.len()
    }

    /// A fresh view over the current candidates (clones the id list; meant
    /// for inspection and reporting, not the stepping hot path).
    pub fn candidates(&self) -> SubCollection<'_> {
        SubCollection::from_parts_unchecked(
            self.collection.deref(),
            self.store.ids.clone(),
            self.fp,
        )
    }

    /// True when at most one candidate remains.
    pub fn is_resolved(&self) -> bool {
        self.store.ids.len() <= 1
    }

    /// Questions answered yes/no so far.
    pub fn questions_asked(&self) -> usize {
        self.questions
    }

    /// "Don't know" replies received so far.
    pub fn unknowns(&self) -> usize {
        self.unknowns
    }

    /// Full question/answer history, including Unknowns. Backtracking
    /// rewrites the flipped entry in place, so the history always reads as
    /// the *corrected* transcript the current candidates are consistent
    /// with.
    pub fn history(&self) -> &[(EntityId, Answer)] {
        &self.history
    }

    /// Enables (or disables) §6 backtracking recovery. The candidate state
    /// at the moment of enablement becomes the replay base, so turn it on
    /// before the first answer for whole-session coverage. Disabling drops
    /// the bookkeeping (and the [`Self::backtracks`] count).
    pub fn set_backtracking(&mut self, on: bool) {
        if on {
            if self.recover.is_none() {
                self.recover = Some(RecoverState {
                    base: self.store.ids.clone(),
                    offset: self.history.len(),
                    confident: Vec::new(),
                    original: Vec::new(),
                    used: FxHashSet::default(),
                    rejected: FxHashSet::default(),
                    backtracks: 0,
                });
            }
        } else {
            self.recover = None;
        }
    }

    /// True when §6 backtracking recovery is enabled.
    pub fn backtracking(&self) -> bool {
        self.recover.is_some()
    }

    /// Successful backtracking recoveries so far (0 when disabled).
    pub fn backtracks(&self) -> usize {
        self.recover.as_ref().map_or(0, |r| r.backtracks)
    }

    /// Table-4 prune counters `(informative, evaluated)` recorded by the
    /// most recent [`Self::next_question`] that ran the strategy with
    /// detail tracking (the plan-cache miss path); `None` when the last
    /// question came from the cache, from the excluded path, or no
    /// selection has run yet. Session traces surface this per question.
    pub fn last_selection_stats(&self) -> Option<(u32, u32)> {
        self.last_detail
    }

    /// Arms (or disarms) per-question [`Provenance`] capture. Disarmed —
    /// the default — [`Self::next_question`] is byte-for-byte the code
    /// path it always was; armed, each selection additionally records a
    /// provenance record readable via [`Self::provenance`]. Arming never
    /// changes selections, budgets, or plan-cache contents (pinned by the
    /// explain-purity property suite).
    pub fn set_explain(&mut self, on: bool) {
        self.explain = on;
        if !on {
            self.last_provenance = None;
        }
    }

    /// True when provenance capture is armed.
    pub fn explain_enabled(&self) -> bool {
        self.explain
    }

    /// The provenance record of the most recent [`Self::next_question`],
    /// when explain mode was armed for it. Repeated reads return the same
    /// record; answering does not clear it (the record explains the last
    /// *question*, which an answer resolves).
    pub fn provenance(&self) -> Option<&Provenance> {
        self.last_provenance.as_ref()
    }

    /// Access to the strategy (e.g. to read prune statistics).
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// Mutable access to the strategy.
    pub fn strategy_mut(&mut self) -> &mut S {
        &mut self.strategy
    }

    /// Attaches (or detaches, with `None`) a shared [`SelectionCache`].
    /// The cache must have been populated by the *same* deterministic
    /// strategy configuration over the *same* collection; see the trait
    /// docs for the losslessness contract.
    pub fn set_selection_cache(&mut self, cache: Option<Arc<dyn SelectionCache>>) {
        self.plan = cache;
    }

    /// Builder form of [`Self::set_selection_cache`].
    pub fn with_selection_cache(mut self, cache: Arc<dyn SelectionCache>) -> Self {
        self.plan = Some(cache);
        self
    }

    /// Selects the next question (Algorithm 2, line 6); `None` when the
    /// session is resolved or every informative entity has been excluded.
    ///
    /// Pure selection: asking is *not* committing. The engine stays
    /// unchanged until [`Self::answer`] is called, and with a deterministic
    /// strategy repeated calls return the same entity — the property the
    /// wire protocol's idempotent `ask` relies on.
    pub fn next_question(&mut self) -> Option<EntityId> {
        // Chaos hook: the canonical "strategy blew up mid-request" site the
        // service edge's panic containment is tested against (free when no
        // fault plan is armed).
        setdisc_util::faults::trip("engine.select");
        if self.is_resolved() {
            return None;
        }
        // Telemetry twin of the fault hook above: same site name, one
        // relaxed load when `SETDISC_OBS` is disarmed.
        let _span = obs::span(obs::Site::EngineSelect);
        let store = mem::take(&mut self.store);
        let view = SubCollection::from_storage_unchecked(self.collection.deref(), store, self.fp);
        // The plan cache only speaks for exclusion-free selections (see
        // [`SelectionCache`]): consult it before running the strategy,
        // populate it after a miss. With exclusions (the "don't know"
        // path) selection always runs the strategy directly.
        let explain = self.explain;
        let disposition;
        let mut explain_detail: Option<SelectionDetail> = None;
        let pick = match &self.plan {
            Some(cache) if self.excluded.is_empty() => {
                // One probe either way: `lookup_with_origin` is contractually
                // identical to `lookup` in every cache-state effect, so the
                // armed path stays bit-identical to the disarmed one.
                let looked = if explain {
                    cache.lookup_with_origin(&view)
                } else {
                    cache.lookup(&view).map(|e| (e, PlanOrigin::Unknown))
                };
                match looked {
                    Some((entity, origin)) => {
                        obs::hit(obs::Site::PlanHit);
                        self.last_detail = None;
                        disposition = PlanDisposition::Hit(origin);
                        Some(entity)
                    }
                    None => {
                        obs::hit(obs::Site::PlanMiss);
                        let detail = self.strategy.select_with_detail(&view, &self.excluded);
                        if let Some(detail) = &detail {
                            cache.record(&view, detail);
                            obs::hit(obs::Site::PlanRecord);
                            obs::record(
                                obs::Site::SelectInformative,
                                u64::from(detail.informative),
                            );
                            obs::record(obs::Site::SelectEvaluated, u64::from(detail.evaluated));
                        }
                        self.last_detail = detail.as_ref().map(|d| (d.informative, d.evaluated));
                        disposition = PlanDisposition::Miss;
                        explain_detail = detail;
                        detail.map(|d| d.entity)
                    }
                }
            }
            _ => {
                self.last_detail = None;
                disposition = if self.plan.is_some() {
                    PlanDisposition::Bypassed
                } else {
                    PlanDisposition::Unattached
                };
                if explain {
                    // `select_with_detail` selects identically to
                    // `select_excluding` (trait contract); the detail feeds
                    // the trace reconstruction. Nothing is recorded to the
                    // cache on this path either way.
                    let detail = self.strategy.select_with_detail(&view, &self.excluded);
                    explain_detail = detail;
                    detail.map(|d| d.entity)
                } else {
                    self.strategy.select_excluding(&view, &self.excluded)
                }
            }
        };
        if explain {
            self.last_provenance = None;
            if let Some(entity) = pick {
                let trace = explain_detail
                    .as_ref()
                    .map(|d| self.strategy.explain_last(&view, &self.excluded, d));
                // Predicted cost drivers for the fingerprint counting pass
                // (dispatch factor 2), next to one measured read-only pass
                // of whichever kernel the dispatcher picks — local scratch,
                // so selection state is untouched.
                let dispatch = view.dispatch_preview(2);
                let started = std::time::Instant::now();
                let mut scratch = crate::subcollection::CountScratch::new();
                let mut counted = Vec::new();
                view.count_entities_with_fp(&mut scratch, &mut counted);
                let measured_count_ns =
                    started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
                self.last_provenance = Some(Provenance {
                    question: self.questions + 1,
                    entity,
                    candidates: view.len(),
                    view_fp: view.fingerprint(),
                    view_len: view.len() as u32,
                    plan: disposition,
                    bound: explain_detail.map_or(0, |d| d.bound),
                    trace,
                    dispatch,
                    measured_count_ns,
                });
            }
        }
        self.store = view.into_storage();
        pick
    }

    /// Applies an answer for `entity` (Algorithm 2, lines 8–12), narrowing
    /// the candidates on Yes/No and excluding the entity on Unknown.
    ///
    /// The caller may apply answers about arbitrary entities (not only the
    /// last selected one) — that is the constraint-assertion API the §6
    /// extensions and the service's out-of-order clients use. Inconsistent
    /// assertions empty the candidate list rather than panicking (unless
    /// backtracking is on — see [`Self::answer_full`]).
    pub fn answer(&mut self, entity: EntityId, answer: Answer) {
        self.answer_full(entity, answer, true);
    }

    /// [`Self::answer`] with an explicit confidence flag (§6 erroneous
    /// answers). `confident: false` marks the answer as the user's best
    /// guess; it narrows the candidates exactly like a confident one, but
    /// when a later contradiction triggers backtracking, unconfident
    /// answers are the first the recovery tries to flip (most recent
    /// first), before reconsidering confident ones. Without backtracking
    /// enabled the flag is recorded nowhere and changes nothing.
    pub fn answer_full(&mut self, entity: EntityId, answer: Answer, confident: bool) {
        // Chaos hook: a panic here fires while the engine mutates candidate
        // state, exercising the service's quarantine-don't-reuse guarantee.
        setdisc_util::faults::trip("engine.answer");
        let _span = obs::span(obs::Site::EngineAnswer);
        self.history.push((entity, answer));
        if let Some(rs) = self.recover.as_mut() {
            rs.confident.push(confident);
            rs.original.push((entity, answer));
        }
        match answer {
            Answer::Yes | Answer::No => {
                self.questions += 1;
                let store = mem::take(&mut self.store);
                let yes_buf = mem::take(&mut self.spare_a);
                let no_buf = mem::take(&mut self.spare_b);
                let view =
                    SubCollection::from_storage_unchecked(self.collection.deref(), store, self.fp);
                let (yes, no) = view.partition_into(entity, yes_buf, no_buf);
                let (keep, discard) = if answer == Answer::Yes {
                    (yes, no)
                } else {
                    (no, yes)
                };
                self.fp = keep.fingerprint();
                // Materialize the surviving ids eagerly: the engine's
                // public accessors ([`Self::candidate_ids`],
                // [`Self::outcome`]) borrow them, and the next
                // [`Self::next_question`] resumes through the
                // materialized-storage fast path.
                let _ = keep.ids();
                self.store = keep.into_storage();
                self.spare_a = discard.into_storage();
                self.spare_b = view.into_storage();
                if self.store.ids.is_empty() && self.recover.is_some() {
                    self.try_recover();
                }
            }
            Answer::Unknown => {
                self.unknowns += 1;
                self.excluded.insert(entity);
            }
        }
    }

    /// §6 backtracking (the paper's Algorithm-2 recovery): the answers
    /// contradict every set, so at least one of them is wrong. Hypothesize
    /// a set of up to [`MAX_FLIPS`] flipped answers — always relative to
    /// the answers *as originally given* — and replay the corrected
    /// transcript from the base view. Hypotheses are tried cheapest-first:
    /// single flips, unconfident answers most-recent-first then confident
    /// ones (the §6 heuristic that the least trusted, latest answer is the
    /// most likely culprit), then pairs in the same priority. The first
    /// hypothesis whose replay keeps a candidate alive at every step — and
    /// that no earlier recovery already committed — is committed: history
    /// rewritten to the corrected transcript, candidates restored,
    /// [`Engine::backtracks`] incremented. If none survives, the candidate
    /// set stays empty and the caller sees the ordinary contradiction
    /// outcome.
    fn try_recover(&mut self) {
        let Some(mut rs) = self.recover.take() else {
            return;
        };
        let offset = rs.offset;
        // Priority order over flippable indices (into `history`).
        let flippable = |i: usize, want_confident: bool| {
            matches!(rs.original[i - offset].1, Answer::Yes | Answer::No)
                && rs.confident[i - offset] == want_confident
        };
        let order: Vec<usize> = (offset..self.history.len())
            .rev()
            .filter(|&i| flippable(i, false))
            .chain(
                (offset..self.history.len())
                    .rev()
                    .filter(|&i| flippable(i, true)),
            )
            .collect();
        // Hypotheses: singles in priority order, then pairs (both members
        // drawn in priority order). MAX_FLIPS caps the depth.
        let mut hypotheses: Vec<Vec<usize>> = order.iter().map(|&i| vec![i]).collect();
        if MAX_FLIPS >= 2 {
            for a in 0..order.len() {
                for b in (a + 1)..order.len() {
                    hypotheses.push(vec![order[a], order[b]]);
                }
            }
        }
        // Rejected sets are filtered up front: partitioning preserves
        // subsets, so dropping them from the base equals dropping them
        // from every step.
        let base: Vec<SetId> = rs
            .base
            .iter()
            .copied()
            .filter(|s| !rs.rejected.contains(s))
            .collect();
        for flips in hypotheses {
            let mut key = flips.clone();
            key.sort_unstable();
            if rs.used.contains(&key) {
                continue;
            }
            let mut view = SubCollection::from_ids(self.collection.deref(), base.clone());
            let mut alive = true;
            let mut corrected: Vec<(EntityId, Answer)> = Vec::with_capacity(rs.original.len());
            for i in offset..self.history.len() {
                let (e, mut a) = rs.original[i - offset];
                if flips.contains(&i) {
                    a = match a {
                        Answer::Yes => Answer::No,
                        Answer::No => Answer::Yes,
                        Answer::Unknown => unreachable!("only Yes/No entries are flippable"),
                    };
                }
                corrected.push((e, a));
                let keep = match a {
                    Answer::Unknown => continue, // exclusions don't narrow
                    Answer::Yes => view.partition(e).0,
                    Answer::No => view.partition(e).1,
                };
                if keep.is_empty() {
                    alive = false;
                    break;
                }
                view = keep;
            }
            if alive {
                self.history.truncate(offset);
                self.history.extend(corrected);
                rs.used.insert(key);
                rs.backtracks += 1;
                self.fp = view.fingerprint();
                let _ = view.ids();
                self.store = view.into_storage();
                break;
            }
        }
        self.recover = Some(rs);
    }

    /// The §6 confirmation verb: the user denies that `set` is the target.
    /// The set is removed from the candidates; if that empties them and
    /// backtracking is enabled, recovery runs immediately — and rejected
    /// sets stay filtered from every future replay, so a recovery can
    /// never resurrect a refuted resolution. This is what makes noisy
    /// sessions *converge*: a lie that leads to a consistent-but-wrong
    /// resolution produces no contradiction on its own; the denial at
    /// confirmation is the signal that re-opens the search. No-op when
    /// `set` is not a candidate.
    pub fn reject(&mut self, set: SetId) {
        if !self.store.ids.contains(&set) {
            if let Some(rs) = self.recover.as_mut() {
                rs.rejected.insert(set);
            }
            return;
        }
        let ids: Vec<SetId> = self
            .store
            .ids
            .iter()
            .copied()
            .filter(|&s| s != set)
            .collect();
        let view = SubCollection::from_ids(self.collection.deref(), ids);
        self.fp = view.fingerprint();
        let _ = view.ids();
        self.store = view.into_storage();
        if let Some(rs) = self.recover.as_mut() {
            rs.rejected.insert(set);
        }
        if self.store.ids.is_empty() && self.recover.is_some() {
            self.try_recover();
        }
    }

    /// Selects a ranked multiple-choice question set of up to `b` entities
    /// (§7): the strategy's pick, then its pick with the former excluded,
    /// and so on. Like [`Self::next_question`] this is pure selection —
    /// the temporary exclusions are restored before returning, repeated
    /// calls return the same batch, and a batch of 1 is exactly
    /// [`Self::next_question`]. Shorter than `b` (possibly empty) when the
    /// view runs out of informative entities.
    pub fn next_questions(&mut self, b: usize) -> Vec<EntityId> {
        let mut batch = Vec::new();
        let mut inserted = Vec::new();
        while batch.len() < b {
            let Some(e) = self.next_question() else {
                break;
            };
            batch.push(e);
            if batch.len() < b && self.excluded.insert(e) {
                inserted.push(e);
            }
        }
        for e in inserted {
            self.excluded.remove(&e);
        }
        batch
    }

    /// Applies a reply to a multiple-choice question set under §7's
    /// first-applicable-option semantics: choosing option `i` asserts No
    /// for every earlier option and Yes for `entities[i]`; `i ==
    /// entities.len()` is "none of these" (No for every option). Every
    /// implied assertion flows through [`Self::answer_full`] with the given
    /// confidence flag, so transcripts mixing batches and single questions
    /// — and backtracking over either — need no special cases. Panics when
    /// `choice > entities.len()`.
    pub fn answer_choice(&mut self, entities: &[EntityId], choice: usize, confident: bool) {
        assert!(
            choice <= entities.len(),
            "choice {choice} out of range for {} options",
            entities.len()
        );
        for (i, &e) in entities.iter().enumerate() {
            if i < choice {
                self.answer_full(e, Answer::No, confident);
            } else {
                self.answer_full(e, Answer::Yes, confident);
                break;
            }
        }
    }

    /// Snapshot of the current state as an [`Outcome`].
    pub fn outcome(&self) -> Outcome {
        Outcome {
            candidates: self.store.ids.clone(),
            questions: self.questions,
            unknowns: self.unknowns,
        }
    }

    /// Driver: runs the loop to resolution with no question budget.
    pub fn run(&mut self, oracle: &mut dyn Oracle) -> Result<Outcome> {
        self.run_bounded(oracle, usize::MAX)
    }

    /// Driver: the §6 noisy-session loop — run to resolution, present the
    /// resolved set for confirmation, and on a denial [`Self::reject`] it
    /// and continue (with backtracking enabled, the denial triggers
    /// recovery). Returns once a resolution is confirmed, the candidates
    /// are exhausted ([`SetDiscError::ContradictoryAnswers`]), the session
    /// sticks unresolved, or `max_questions` yes/no answers have been
    /// spent. Like [`Self::run_bounded`], written purely against the
    /// public verbs.
    pub fn run_confirming(
        &mut self,
        oracle: &mut dyn ConfirmingOracle,
        max_questions: usize,
    ) -> Result<Outcome> {
        loop {
            while !self.is_resolved() && self.questions < max_questions {
                let Some(entity) = self.next_question() else {
                    return Ok(self.outcome()); // survivors — can't narrow
                };
                let answer = oracle.answer(entity);
                self.answer(entity, answer);
            }
            match self.candidate_ids() {
                [] => {
                    return Err(SetDiscError::ContradictoryAnswers {
                        after_questions: self.questions,
                    })
                }
                &[only] => {
                    if oracle.confirm(only) {
                        return Ok(self.outcome());
                    }
                    self.reject(only);
                    if self.candidate_ids().is_empty() {
                        return Err(SetDiscError::ContradictoryAnswers {
                            after_questions: self.questions,
                        });
                    }
                }
                _ => return Ok(self.outcome()), // question budget exhausted
            }
        }
    }

    /// Driver: runs until resolved, the budget is exhausted, or no further
    /// question can be asked (the halt condition Γ). This is the only loop
    /// in the crate that touches an [`Oracle`]; it is itself written against
    /// the public sans-IO verbs.
    pub fn run_bounded(
        &mut self,
        oracle: &mut dyn Oracle,
        max_questions: usize,
    ) -> Result<Outcome> {
        while !self.is_resolved() && self.questions < max_questions {
            let Some(entity) = self.next_question() else {
                break; // everything informative excluded — return survivors
            };
            let answer = oracle.answer(entity);
            self.answer(entity, answer);
            if self.store.ids.is_empty() {
                return Err(SetDiscError::ContradictoryAnswers {
                    after_questions: self.questions,
                });
            }
        }
        Ok(self.outcome())
    }
}

impl<'c, S: SelectionStrategy> Engine<&'c Collection, S> {
    /// Starts a borrowed-collection engine over an explicit candidate view
    /// (the classic [`crate::discovery::Session::over`] entry point).
    pub fn over(candidates: SubCollection<'c>, strategy: S) -> Self {
        let collection = candidates.collection();
        let fp = candidates.fingerprint();
        // The view may arrive lazily materialized (e.g. straight out of a
        // partition); the engine's storage invariant requires the id
        // vector, so force the decode before taking the buffers.
        let _ = candidates.ids();
        let store = candidates.into_storage();
        Self::from_parts(collection, store, fp, strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AvgDepth;
    use crate::discovery::SimulatedOracle;
    use crate::lookahead::KLp;
    use crate::strategy::MostEven;

    fn figure1() -> Collection {
        Collection::from_raw_sets(vec![
            vec![0, 1, 2, 3],
            vec![0, 3, 4],
            vec![0, 1, 2, 3, 5],
            vec![0, 1, 2, 6, 7],
            vec![0, 1, 7, 8],
            vec![0, 1, 9, 10],
            vec![0, 1, 6],
        ])
        .unwrap()
    }

    #[test]
    fn owned_sessions_are_static_send_and_resumable_across_threads() {
        fn assert_send<T: Send + 'static>(_: &T) {}
        let collection = Arc::new(figure1());
        let mut engine: OwnedSession<KLp<AvgDepth>> =
            Engine::new(Arc::clone(&collection), &[], KLp::<AvgDepth>::new(2));
        assert_send(&engine);
        // Step once on this thread, finish on another — the table-resume
        // pattern of the service layer.
        let e = engine.next_question().unwrap();
        engine.answer(e, Answer::No);
        let handle = std::thread::spawn(move || {
            let target = engine.collection().set(engine.candidate_ids()[0]).clone();
            let outcome = engine.run(&mut SimulatedOracle::new(&target)).unwrap();
            outcome.discovered().unwrap()
        });
        let _ = handle.join().unwrap();
    }

    #[test]
    fn boxed_send_strategies_compose() {
        // The exact type the service's session table stores.
        let collection = Arc::new(figure1());
        let strategy: Box<dyn SelectionStrategy + Send> = Box::new(KLp::<AvgDepth>::new(2));
        let mut engine: OwnedSession<Box<dyn SelectionStrategy + Send>> =
            Engine::new(collection, &[], strategy);
        let target = engine.collection().set(crate::entity::SetId(4)).clone();
        let outcome = engine.run(&mut SimulatedOracle::new(&target)).unwrap();
        assert_eq!(outcome.discovered(), Some(crate::entity::SetId(4)));
    }

    #[test]
    fn borrowed_and_owned_engines_ask_identical_sequences() {
        let c = figure1();
        let arc = Arc::new(figure1());
        for id in 0..c.len() as u32 {
            let id = crate::entity::SetId(id);
            let target = c.set(id).clone();
            let mut borrowed = Engine::new(&c, &[], KLp::<AvgDepth>::new(2));
            let mut owned = Engine::new(Arc::clone(&arc), &[], KLp::<AvgDepth>::new(2));
            loop {
                let qb = borrowed.next_question();
                let qo = owned.next_question();
                assert_eq!(qb, qo, "question divergence at target {id}");
                let Some(e) = qb else { break };
                let a = if target.contains(e) {
                    Answer::Yes
                } else {
                    Answer::No
                };
                borrowed.answer(e, a);
                owned.answer(e, a);
            }
            assert_eq!(borrowed.outcome(), owned.outcome());
            assert_eq!(borrowed.outcome().discovered(), Some(id));
        }
    }

    #[test]
    fn next_question_is_pure_and_repeatable() {
        let c = figure1();
        let mut engine = Engine::new(&c, &[], MostEven::new());
        let q1 = engine.next_question().unwrap();
        let q2 = engine.next_question().unwrap();
        assert_eq!(q1, q2, "asking must not mutate the candidate state");
        assert_eq!(engine.questions_asked(), 0);
        assert!(engine.history().is_empty());
    }

    #[test]
    fn over_accepts_lazily_materialized_views() {
        // A partition child arrives with its id vector unmaterialized; the
        // engine must still see every candidate (regression: `over` once
        // stored the empty lazy vector, reporting an instantly resolved
        // session).
        let c = figure1();
        let (yes, _) = c.full_view().partition(crate::entity::EntityId(3));
        assert_eq!(yes.len(), 3);
        let mut engine = Engine::over(yes, MostEven::new());
        assert_eq!(engine.candidate_count(), 3);
        assert!(!engine.is_resolved());
        let target = c.set(crate::entity::SetId(1)).clone();
        let outcome = engine.run(&mut SimulatedOracle::new(&target)).unwrap();
        assert_eq!(outcome.discovered(), Some(crate::entity::SetId(1)));
    }

    #[test]
    fn with_candidates_sorts_and_dedups() {
        let c = figure1();
        use crate::entity::SetId;
        let engine =
            Engine::with_candidates(&c, vec![SetId(4), SetId(1), SetId(4)], MostEven::new());
        assert_eq!(engine.candidate_ids(), &[SetId(1), SetId(4)]);
        assert_eq!(engine.candidates().fingerprint(), {
            SubCollection::from_ids(&c, vec![SetId(1), SetId(4)]).fingerprint()
        });
    }

    /// A hash-map [`SelectionCache`] for hook tests (the real sharded,
    /// persistable implementation lives in `setdisc-plan`).
    #[derive(Default)]
    struct TestCache {
        map: std::sync::Mutex<std::collections::HashMap<(u128, usize), EntityId>>,
        hits: std::sync::atomic::AtomicUsize,
        records: std::sync::atomic::AtomicUsize,
    }

    impl SelectionCache for TestCache {
        fn lookup(&self, view: &SubCollection<'_>) -> Option<EntityId> {
            let hit = self
                .map
                .lock()
                .unwrap()
                .get(&(view.fingerprint().as_u128(), view.len()))
                .copied();
            if hit.is_some() {
                self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            }
            hit
        }

        fn record(&self, view: &SubCollection<'_>, detail: &crate::strategy::SelectionDetail) {
            self.records
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.map
                .lock()
                .unwrap()
                .insert((view.fingerprint().as_u128(), view.len()), detail.entity);
        }
    }

    #[test]
    fn selection_cache_serves_identical_sequences_and_skips_exclusions() {
        let c = figure1();
        let cache = Arc::new(TestCache::default());
        let run = |cache: Option<Arc<TestCache>>, unknown_at: Option<usize>| {
            let mut engine = Engine::new(&c, &[], KLp::<AvgDepth>::new(2));
            if let Some(cache) = cache {
                engine.set_selection_cache(Some(cache));
            }
            let target = c.set(crate::entity::SetId(4)).clone();
            let mut asked = Vec::new();
            while let Some(e) = engine.next_question() {
                let answer = if unknown_at == Some(asked.len()) {
                    Answer::Unknown
                } else if target.contains(e) {
                    Answer::Yes
                } else {
                    Answer::No
                };
                asked.push(e);
                engine.answer(e, answer);
            }
            (asked, engine.outcome())
        };
        // Cold pass records, warm pass hits; both match the cache-off run.
        let plain = run(None, None);
        let cold = run(Some(Arc::clone(&cache)), None);
        assert!(cache.records.load(std::sync::atomic::Ordering::Relaxed) > 0);
        assert_eq!(cache.hits.load(std::sync::atomic::Ordering::Relaxed), 0);
        let warm = run(Some(Arc::clone(&cache)), None);
        assert_eq!(plain, cold);
        assert_eq!(plain, warm);
        assert!(cache.hits.load(std::sync::atomic::Ordering::Relaxed) > 0);
        // An Unknown answer excludes an entity: every later selection must
        // bypass the cache (neither lookups nor records).
        let hits_before = cache.hits.load(std::sync::atomic::Ordering::Relaxed);
        let records_before = cache.records.load(std::sync::atomic::Ordering::Relaxed);
        let with_unknown = run(Some(Arc::clone(&cache)), Some(0));
        assert!(
            with_unknown.0.len() > 1,
            "session continued past the Unknown"
        );
        assert_eq!(
            cache.hits.load(std::sync::atomic::Ordering::Relaxed),
            hits_before + 1,
            "only the pre-Unknown root selection may hit"
        );
        assert_eq!(
            cache.records.load(std::sync::atomic::Ordering::Relaxed),
            records_before,
            "excluded-path selections are never recorded"
        );
        // And the unknown run matches a cache-off run of the same plan.
        assert_eq!(with_unknown, run(None, Some(0)));
    }

    /// Drives a backtracking session against a lying oracle with the §6
    /// confirm-and-reject loop: answer questions (lying at `lie_at`
    /// question indices), and whenever the session resolves, confirm —
    /// rejecting wrong resolutions re-opens the search. Returns the
    /// discovered set (if converged) and the total interactions.
    fn drive_noisy(
        c: &Collection,
        target_id: crate::entity::SetId,
        lie_at: &[usize],
        strategy: KLp<AvgDepth>,
    ) -> (Option<crate::entity::SetId>, usize) {
        let target = c.set(target_id).clone();
        let mut engine = Engine::new(c, &[], strategy);
        engine.set_backtracking(true);
        let mut asked = 0usize;
        let mut interactions = 0usize;
        loop {
            while let Some(e) = engine.next_question() {
                let truth = target.contains(e);
                let lie = lie_at.contains(&asked);
                asked += 1;
                interactions += 1;
                let a = if truth != lie {
                    Answer::Yes
                } else {
                    Answer::No
                };
                engine.answer(e, a);
                assert!(interactions < 200, "runaway session");
            }
            match engine.candidate_ids() {
                [] => return (None, interactions),
                [only] => {
                    let only = *only;
                    interactions += 1; // the confirmation question
                    if only == target_id {
                        return (Some(only), interactions);
                    }
                    engine.reject(only);
                }
                _ => return (None, interactions), // stuck unresolved
            }
        }
    }

    #[test]
    fn backtracking_recovers_a_single_erroneous_answer() {
        // Lie on the first question, answer truthfully afterwards: without
        // recovery the session dead-ends or resolves wrong; with recovery
        // plus confirmation it always converges to the true target.
        let c = figure1();
        for target_id in 0..c.len() as u32 {
            let target_id = crate::entity::SetId(target_id);
            let (got, _) = drive_noisy(&c, target_id, &[0], KLp::<AvgDepth>::new(2));
            assert_eq!(got, Some(target_id), "target {target_id:?} not recovered");
        }
    }

    #[test]
    fn backtracking_recovers_errors_at_any_depth() {
        let c = figure1();
        for target_id in 0..c.len() as u32 {
            let target_id = crate::entity::SetId(target_id);
            for lie_pos in 0..3usize {
                let (got, n) = drive_noisy(&c, target_id, &[lie_pos], KLp::<AvgDepth>::new(2));
                assert_eq!(got, Some(target_id), "target {target_id:?} lie {lie_pos}");
                // §6 cost envelope: one error costs at most one extra run
                // of the error-free session plus the confirmations.
                assert!(n <= 2 * 4 + 4, "{n} interactions for lie {lie_pos}");
            }
        }
    }

    #[test]
    fn contradiction_without_backtracking_still_closes() {
        // Regression for the bug path the service maps to "session closed":
        // default sessions keep the empty-candidate contradiction behavior.
        let c = figure1();
        let mut engine = Engine::new(&c, &[], MostEven::new());
        let e = engine.next_question().unwrap();
        engine.answer(e, Answer::Yes);
        // Assert the exact opposite of the first answer — no set survives.
        engine.answer(e, Answer::No);
        assert_eq!(engine.candidate_count(), 0);
        assert_eq!(engine.backtracks(), 0);
    }

    #[test]
    fn unconfident_answers_are_flipped_first() {
        // Entity e=4 lives only in S2 (id 1); entity f=5 only in S3 (id 2).
        // Yes-on-e (unconfident) then Yes-on-f (confident) contradicts:
        // flipping *either* answer alone yields a consistent replay, so the
        // recovery's choice reveals its ordering. Unconfident-first must
        // flip the older e answer and resolve to S3 — plain recency would
        // flip f and resolve to S2.
        let c = figure1();
        let mut engine = Engine::new(&c, &[], MostEven::new());
        engine.set_backtracking(true);
        engine.answer_full(crate::entity::EntityId(4), Answer::Yes, false);
        assert_eq!(engine.candidate_ids(), &[crate::entity::SetId(1)]);
        engine.answer_full(crate::entity::EntityId(5), Answer::Yes, true);
        assert_eq!(engine.backtracks(), 1);
        assert_eq!(engine.candidate_ids(), &[crate::entity::SetId(2)]);
        assert_eq!(
            engine.history(),
            &[
                (crate::entity::EntityId(4), Answer::No),
                (crate::entity::EntityId(5), Answer::Yes),
            ]
        );
    }

    #[test]
    fn rejection_is_remembered_across_recoveries() {
        // Reject S2, then contradict: the recovery replay must not
        // resurrect the refuted set even when a flip would make it
        // consistent again.
        let c = figure1();
        let mut engine = Engine::new(&c, &[], MostEven::new());
        engine.set_backtracking(true);
        engine.answer_full(crate::entity::EntityId(4), Answer::Yes, false);
        assert_eq!(engine.candidate_ids(), &[crate::entity::SetId(1)]);
        engine.reject(crate::entity::SetId(1));
        // Recovery flips the unconfident Yes; S2 stays filtered out.
        assert!(engine.backtracks() >= 1);
        assert!(!engine.candidate_ids().contains(&crate::entity::SetId(1)));
        assert!(engine.candidate_count() > 0);
    }

    #[test]
    fn backtracking_recovers_two_errors() {
        // Two lies at different depths: within the MAX_FLIPS = 2 §6
        // envelope, the confirm-and-reject loop still converges.
        let c = figure1();
        for target_id in 0..c.len() as u32 {
            let target_id = crate::entity::SetId(target_id);
            let (got, _) = drive_noisy(&c, target_id, &[0, 2], KLp::<AvgDepth>::new(2));
            assert_eq!(got, Some(target_id), "target {target_id:?}, two lies");
        }
    }

    #[test]
    fn next_questions_is_pure_and_ranked() {
        let c = figure1();
        let mut engine = Engine::new(&c, &[], KLp::<AvgDepth>::new(2));
        let single = engine.next_question().unwrap();
        let batch = engine.next_questions(3);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0], single, "rank 1 of the batch is the single pick");
        let all_distinct: FxHashSet<_> = batch.iter().collect();
        assert_eq!(all_distinct.len(), 3);
        // Pure: repeated call returns the same batch, nothing committed.
        assert_eq!(engine.next_questions(3), batch);
        assert_eq!(engine.questions_asked(), 0);
        assert!(engine.history().is_empty());
        // Each later rank is what the strategy picks with earlier ranks
        // excluded — verify rank 2 directly.
        let mut excl = FxHashSet::default();
        excl.insert(batch[0]);
        let view = engine.candidates();
        let mut fresh = KLp::<AvgDepth>::new(2);
        assert_eq!(fresh.select_excluding(&view, &excl), Some(batch[1]));
    }

    #[test]
    fn answer_choice_applies_first_applicable_option_semantics() {
        let c = figure1();
        let target = c.set(crate::entity::SetId(5)).clone();
        // Batch loop: choose the first option in the target, or "none".
        let mut mc = Engine::new(&c, &[], KLp::<AvgDepth>::new(2));
        let mut interactions = 0usize;
        while !mc.is_resolved() {
            let batch = mc.next_questions(3);
            if batch.is_empty() {
                break;
            }
            let choice = batch
                .iter()
                .position(|&e| target.contains(e))
                .unwrap_or(batch.len());
            mc.answer_choice(&batch, choice, true);
            interactions += 1;
        }
        assert_eq!(mc.outcome().discovered(), Some(crate::entity::SetId(5)));
        // A replayed engine fed the identical implied assertions matches
        // the multiple-choice transcript exactly.
        let mut replay = Engine::new(&c, &[], KLp::<AvgDepth>::new(2));
        for &(e, a) in mc.history() {
            replay.answer(e, a);
        }
        assert_eq!(replay.outcome(), mc.outcome());
        assert!(interactions <= mc.questions_asked());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn answer_choice_rejects_out_of_range() {
        let c = figure1();
        let mut engine = Engine::new(&c, &[], MostEven::new());
        let batch = engine.next_questions(2);
        engine.answer_choice(&batch, 3, true);
    }

    #[test]
    fn partition_buffers_are_recycled() {
        // After the first two answers the three id buffers rotate through
        // the engine; subsequent answers must not grow capacity beyond the
        // initial candidate count.
        let c = figure1();
        let mut engine = Engine::new(&c, &[], MostEven::new());
        let target = c.set(crate::entity::SetId(5)).clone();
        while let Some(e) = engine.next_question() {
            let a = if target.contains(e) {
                Answer::Yes
            } else {
                Answer::No
            };
            engine.answer(e, a);
        }
        assert_eq!(engine.outcome().discovered(), Some(crate::entity::SetId(5)));
        assert!(engine.spare_a.ids.capacity() <= 7);
        assert!(engine.spare_b.ids.capacity() <= 7);
    }
}
