//! Word-parallel set-id bitmaps and the inverted postings index.
//!
//! The selection hot kernels — splitting a sub-collection on an entity and
//! counting entity occurrences — used to walk per-element `Vec<SetId>`
//! views. This module provides the bitmap substrate that turns them into
//! word-parallel operations:
//!
//! * [`IdBitmap`] — a dense `u64`-word bitmap over a collection's `SetId`
//!   space (`n` sets ⇒ `⌈n/64⌉` words), with popcount-based length and an
//!   increasing-id iterator. A [`crate::SubCollection`] carries one
//!   alongside its sorted id vector, so `partition` becomes one pass of
//!   `AND` / `ANDNOT` over the words.
//! * [`EntityPostings`] — the inverted index in bitmap form: for each
//!   entity, the bitmap of member sets containing it. Built once per
//!   [`crate::Collection`] (and therefore shared through the service's
//!   `Arc<Snapshot>` by every session over that collection).
//!
//! # Dense vs. sparse representation
//!
//! A dense bitmap costs `⌈n/64⌉` words (`n/8` bytes) per entity regardless
//! of how many sets contain it, which is wasteful for the long tail of rare
//! entities. [`EntityPostings`] therefore materializes a bitmap only for
//! entities whose sorted posting list (already held by the collection's
//! inverted index) is at least as long as the bitmap's word count:
//! at the threshold the bitmap costs at most 2× the sparse list's memory
//! (8 bytes/word vs. 4 bytes/id), and above it the bitmap is both smaller
//! per additional member and O(words) to intersect instead of
//! O(|C| + |list|) to merge. Entities below the threshold keep only the
//! sparse list; partition and counting fall back to per-id probes against
//! the *view's* bitmap, which is O(|list|) — cheap exactly because the
//! list is short. See DESIGN.md §8 for the full cost model.

use crate::entity::{EntityId, SetId};

/// A dense bitmap over a collection's `SetId` space.
///
/// All binary operations require both operands to come from the same
/// collection (equal word counts); this is a programmer invariant, checked
/// with debug assertions in the hot paths.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct IdBitmap {
    words: Vec<u64>,
}

impl IdBitmap {
    /// Words needed for `n_sets` bits.
    #[inline]
    pub fn words_for(n_sets: usize) -> usize {
        n_sets.div_ceil(64)
    }

    /// An empty bitmap sized for `n_sets` ids.
    pub fn empty(n_sets: usize) -> Self {
        Self {
            words: vec![0; Self::words_for(n_sets)],
        }
    }

    /// A bitmap with ids `0..n_sets` all present.
    pub fn full(n_sets: usize) -> Self {
        let mut words = vec![u64::MAX; Self::words_for(n_sets)];
        let tail = n_sets % 64;
        if tail != 0 {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
        Self { words }
    }

    /// Builds from sorted, in-range ids.
    pub fn from_sorted_ids(n_sets: usize, ids: &[SetId]) -> Self {
        let mut bm = Self::empty(n_sets);
        bm.set_from_ids(ids);
        bm
    }

    /// Clears the bitmap and resizes it for `n_sets` ids, reusing the word
    /// buffer (the recycling entry point for scratch-owned bitmaps).
    pub fn reset(&mut self, n_sets: usize) {
        self.words.clear();
        self.words.resize(Self::words_for(n_sets), 0);
    }

    /// Sets the bits for `ids` (does not clear existing bits first).
    pub fn set_from_ids(&mut self, ids: &[SetId]) {
        for &id in ids {
            self.insert(id);
        }
    }

    /// Clears the bitmap, resizes it for the same id space as `other`, and
    /// copies `other`'s words into the reused buffer.
    pub fn copy_words_from(&mut self, other: &Self) {
        self.words.clear();
        self.words.extend_from_slice(&other.words);
    }

    /// Sets bit `id`.
    #[inline]
    pub fn insert(&mut self, id: SetId) {
        self.words[id.0 as usize / 64] |= 1u64 << (id.0 % 64);
    }

    /// Clears bit `id`.
    #[inline]
    pub fn remove(&mut self, id: SetId) {
        self.words[id.0 as usize / 64] &= !(1u64 << (id.0 % 64));
    }

    /// The smallest id present.
    pub fn first(&self) -> Option<SetId> {
        self.words
            .iter()
            .enumerate()
            .find(|(_, &w)| w != 0)
            .map(|(wi, &w)| SetId(wi as u32 * 64 + w.trailing_zeros()))
    }

    /// Tests bit `id` (false when out of range).
    #[inline]
    pub fn contains(&self, id: SetId) -> bool {
        self.words
            .get(id.0 as usize / 64)
            .is_some_and(|w| w >> (id.0 % 64) & 1 == 1)
    }

    /// Number of ids present (popcount over the words).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no id is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// The raw words.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable raw words (for kernels that write both children of a split
    /// in one pass).
    #[inline]
    pub(crate) fn words_mut(&mut self) -> &mut Vec<u64> {
        &mut self.words
    }

    /// `|self ∩ other|` by word-parallel popcount.
    pub fn intersection_len(&self, other: &Self) -> usize {
        debug_assert_eq!(self.words.len(), other.words.len());
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterates the present ids in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = SetId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros();
                w &= w - 1;
                Some(SetId(wi as u32 * 64 + bit))
            })
        })
    }
}

impl setdisc_util::mem::HeapSize for IdBitmap {
    fn heap_bytes(&self) -> usize {
        setdisc_util::mem::vec_bytes(&self.words)
    }
}

impl std::fmt::Debug for IdBitmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter().map(|id| id.0)).finish()
    }
}

/// The inverted index in bitmap form: entity → bitmap of member sets, for
/// the entities frequent enough to clear the dense threshold (see the
/// module docs); rare entities keep only the collection's sorted posting
/// lists.
pub struct EntityPostings {
    /// Indexed by entity id; `None` below the dense threshold.
    dense: Vec<Option<Box<IdBitmap>>>,
    dense_entities: usize,
    scan_cost: u64,
}

impl EntityPostings {
    /// Builds the index from the collection's inverted lists (`inverted[e]`
    /// = sorted ids of the sets containing entity `e`) over `n_sets` sets.
    pub fn build(inverted: &[Vec<SetId>], n_sets: usize) -> Self {
        let words = IdBitmap::words_for(n_sets);
        let mut dense_entities = 0;
        let mut scan_cost = 0u64;
        let dense = inverted
            .iter()
            .map(|list| {
                if list.is_empty() {
                    return None;
                }
                if list.len() >= words {
                    dense_entities += 1;
                    scan_cost += words as u64;
                    Some(Box::new(IdBitmap::from_sorted_ids(n_sets, list)))
                } else {
                    scan_cost += list.len() as u64;
                    None
                }
            })
            .collect();
        Self {
            dense,
            dense_entities,
            scan_cost,
        }
    }

    /// The dense bitmap for entity `e`, when it cleared the threshold.
    #[inline]
    pub fn dense(&self, e: EntityId) -> Option<&IdBitmap> {
        self.dense
            .get(e.0 as usize)
            .and_then(|slot| slot.as_deref())
    }

    /// Number of entities holding a dense bitmap.
    pub fn dense_entities(&self) -> usize {
        self.dense_entities
    }

    /// Cost (in word/id probes) of one postings-driven counting sweep over
    /// every occurring entity — the quantity counting kernels compare
    /// against a view's element count to pick a representation.
    #[inline]
    pub fn scan_cost(&self) -> u64 {
        self.scan_cost
    }
}

impl setdisc_util::mem::HeapSize for EntityPostings {
    fn heap_bytes(&self) -> usize {
        // The spine plus every materialized dense bitmap (boxed, so each
        // carries its own `IdBitmap` header on the heap).
        self.dense.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<SetId> {
        v.iter().copied().map(SetId).collect()
    }

    #[test]
    fn empty_full_and_tail_masking() {
        let e = IdBitmap::empty(70);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let f = IdBitmap::full(70);
        assert_eq!(f.len(), 70);
        assert!(f.contains(SetId(69)));
        assert!(!f.contains(SetId(70)));
        assert!(!f.contains(SetId(1000)));
        // Exact multiples of 64 have no tail word to mask.
        assert_eq!(IdBitmap::full(128).len(), 128);
    }

    #[test]
    fn from_sorted_ids_roundtrips_through_iter() {
        let v = ids(&[0, 5, 63, 64, 65, 129]);
        let bm = IdBitmap::from_sorted_ids(130, &v);
        assert_eq!(bm.iter().collect::<Vec<_>>(), v);
        assert_eq!(bm.len(), v.len());
        for id in &v {
            assert!(bm.contains(*id));
        }
        assert!(!bm.contains(SetId(1)));
    }

    #[test]
    fn reset_recycles_capacity() {
        let mut bm = IdBitmap::from_sorted_ids(200, &ids(&[0, 199]));
        let cap = bm.words.capacity();
        bm.reset(130);
        assert!(bm.is_empty());
        assert_eq!(bm.words().len(), IdBitmap::words_for(130));
        assert!(bm.words.capacity() >= cap.min(IdBitmap::words_for(130)));
        bm.insert(SetId(129));
        assert_eq!(bm.iter().collect::<Vec<_>>(), ids(&[129]));
    }

    #[test]
    fn remove_first_and_copy_words() {
        let mut bm = IdBitmap::from_sorted_ids(150, &ids(&[3, 64, 149]));
        assert_eq!(bm.first(), Some(SetId(3)));
        bm.remove(SetId(3));
        assert_eq!(bm.first(), Some(SetId(64)));
        assert!(!bm.contains(SetId(3)));
        let mut other = IdBitmap::empty(10);
        other.copy_words_from(&bm);
        assert_eq!(other, bm);
        assert_eq!(IdBitmap::empty(64).first(), None);
    }

    #[test]
    fn intersection_len_matches_naive() {
        let a = IdBitmap::from_sorted_ids(150, &ids(&[1, 2, 3, 64, 100, 149]));
        let b = IdBitmap::from_sorted_ids(150, &ids(&[2, 3, 64, 101]));
        assert_eq!(a.intersection_len(&b), 3);
        assert_eq!(b.intersection_len(&a), 3);
        assert_eq!(a.intersection_len(&IdBitmap::empty(150)), 0);
    }

    #[test]
    fn postings_dense_threshold() {
        // 130 sets → 3 words: lists of length ≥ 3 go dense.
        let n = 130usize;
        let inverted = vec![
            ids(&[]),                      // absent entity
            ids(&[7]),                     // sparse
            ids(&[0, 64]),                 // sparse (length 2 < 3 words)
            ids(&[0, 64, 129]),            // dense (length 3 ≥ 3 words)
            (0..130).map(SetId).collect(), // dense
        ];
        let p = EntityPostings::build(&inverted, n);
        assert!(p.dense(EntityId(0)).is_none());
        assert!(p.dense(EntityId(1)).is_none());
        assert!(p.dense(EntityId(2)).is_none());
        let d3 = p.dense(EntityId(3)).expect("dense");
        assert_eq!(d3.iter().collect::<Vec<_>>(), ids(&[0, 64, 129]));
        assert_eq!(p.dense(EntityId(4)).unwrap().len(), 130);
        assert!(p.dense(EntityId(99)).is_none(), "out of range is None");
        assert_eq!(p.dense_entities(), 2);
        // Scan cost: sparse lists contribute their length, dense ones the
        // word count.
        assert_eq!(p.scan_cost(), 1 + 2 + 3 + 3);
    }

    #[test]
    fn tiny_collections_are_all_dense() {
        // n ≤ 64 → one word: every occurring entity clears the threshold.
        let inverted = vec![ids(&[0]), ids(&[0, 1, 2])];
        let p = EntityPostings::build(&inverted, 3);
        assert!(p.dense(EntityId(0)).is_some());
        assert!(p.dense(EntityId(1)).is_some());
        assert_eq!(p.dense_entities(), 2);
    }
}
