//! Plain-text collection I/O.
//!
//! Format: one set per line, `name: member member member`; the name prefix
//! is optional (`S<line>` is assigned when missing). `#` starts a comment,
//! blank lines are skipped, members are whitespace-separated tokens
//! interned as entities. Round-trips through [`write_collection`] /
//! [`parse_collection`].

use crate::collection::{Collection, CollectionBuilder};
use crate::entity::EntityInterner;
use crate::error::{Result, SetDiscError};
use crate::set::EntitySet;

/// A collection loaded from text: sets, entity names, set names.
pub struct NamedCollection {
    /// The deduplicated collection.
    pub collection: Collection,
    /// Entity name ↔ id mapping.
    pub entities: EntityInterner,
    /// Set names aligned with set ids.
    pub set_names: Vec<String>,
    /// Duplicate sets dropped while parsing.
    pub duplicates_dropped: usize,
}

impl NamedCollection {
    /// The name of a set.
    pub fn set_name(&self, id: crate::entity::SetId) -> &str {
        &self.set_names[id.0 as usize]
    }
}

impl setdisc_util::mem::HeapSize for NamedCollection {
    fn heap_bytes(&self) -> usize {
        self.collection.heap_bytes() + self.entities.heap_bytes() + self.set_names.heap_bytes()
    }
}

/// Parses the text format described in the module docs.
pub fn parse_collection(text: &str) -> Result<NamedCollection> {
    let mut entities = EntityInterner::new();
    let mut builder = CollectionBuilder::new();
    let mut set_names = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (name, members) = match line.split_once(':') {
            Some((name, rest)) => (name.trim().to_string(), rest),
            None => (format!("S{}", set_names.len()), line),
        };
        if name.is_empty() {
            return Err(SetDiscError::InvalidTree(format!(
                "line {}: empty set name",
                lineno + 1
            )));
        }
        let set = EntitySet::from_iter(members.split_whitespace().map(|t| entities.intern(t)));
        if set.is_empty() {
            return Err(SetDiscError::InvalidTree(format!(
                "line {}: set {name:?} has no members",
                lineno + 1
            )));
        }
        let before = builder.len();
        builder.push(set);
        if builder.len() > before {
            set_names.push(name);
        }
    }
    let built = builder.build()?;
    Ok(NamedCollection {
        collection: built.collection,
        entities,
        set_names,
        duplicates_dropped: built.duplicates_dropped,
    })
}

/// Serializes a collection with its names back to the text format.
pub fn write_collection(named: &NamedCollection) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (id, set) in named.collection.iter() {
        let _ = write!(out, "{}:", named.set_name(id));
        for e in set.iter() {
            let _ = write!(out, " {}", named.entities.display(e));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entity::{EntityId, SetId};

    const SAMPLE: &str = "\
# disease profiles
flu: fever cough fatigue
cold: cough sneezing   # inline comment
migraine: headache nausea

fever cough  # unnamed set
";

    #[test]
    fn parses_names_comments_and_unnamed_sets() {
        let named = parse_collection(SAMPLE).unwrap();
        assert_eq!(named.collection.len(), 4);
        assert_eq!(named.set_name(SetId(0)), "flu");
        assert_eq!(named.set_name(SetId(3)), "S3");
        let fever = named.entities.get("fever").unwrap();
        assert!(named.collection.set(SetId(0)).contains(fever));
        assert!(named.collection.set(SetId(3)).contains(fever));
        assert_eq!(named.duplicates_dropped, 0);
    }

    #[test]
    fn duplicate_sets_are_dropped_with_count() {
        let named = parse_collection("a: x y\nb: y x\nc: z\n").unwrap();
        assert_eq!(named.collection.len(), 2);
        assert_eq!(named.duplicates_dropped, 1);
        // The surviving names correspond to the kept sets.
        assert_eq!(named.set_names.len(), 2);
        assert_eq!(named.set_name(SetId(0)), "a");
        assert_eq!(named.set_name(SetId(1)), "c");
    }

    #[test]
    fn rejects_degenerate_lines() {
        assert!(parse_collection(": x y\n").is_err(), "empty name");
        assert!(parse_collection("name:\n").is_err(), "no members");
        assert!(parse_collection("# only comments\n").is_err(), "empty file");
    }

    #[test]
    fn roundtrip() {
        let named = parse_collection(SAMPLE).unwrap();
        let text = write_collection(&named);
        let again = parse_collection(&text).unwrap();
        assert_eq!(again.collection.len(), named.collection.len());
        for (id, set) in named.collection.iter() {
            // Entity ids may be renumbered; compare through names.
            let orig: Vec<String> = set.iter().map(|e| named.entities.display(e)).collect();
            let re_set = again.collection.set(id);
            let re: Vec<String> = re_set.iter().map(|e| again.entities.display(e)).collect();
            let mut a = orig.clone();
            let mut b = re.clone();
            a.sort();
            b.sort();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn entities_intern_consistently() {
        let named = parse_collection("a: x y\nb: y z\n").unwrap();
        let y = named.entities.get("y").unwrap();
        assert_eq!(named.collection.sets_containing(y).len(), 2);
        assert_eq!(named.entities.len(), 3);
        assert!(y.0 < 3);
        let _ = EntityId(0); // silence unused import in some cfg combos
    }
}
