//! Collection analysis: the §5.3.4-style diagnostics that predict how an
//! exploration will behave before any tree is built.
//!
//! The paper shows that discovery cost is governed by overlap structure —
//! disjoint sets degenerate to `n − 1` questions, heavy overlap approaches
//! `log₂ n` (§1, §5.3.4). [`CollectionProfile`] surfaces exactly those
//! signals: entity frequency distribution, pairwise overlap estimates, the
//! `LB₀` floors, and how many entities are informative at the root.

use crate::collection::Collection;
use crate::cost::{AvgDepth, CostModel, Height};
use crate::subcollection::CountScratch;
use setdisc_util::Rng;

/// Structural profile of a collection.
#[derive(Clone, Debug)]
pub struct CollectionProfile {
    /// Number of sets.
    pub n_sets: usize,
    /// Distinct entities across all sets.
    pub distinct_entities: usize,
    /// Mean set size.
    pub avg_set_size: f64,
    /// Entities informative for the full collection (present in ≥1 set but
    /// not all).
    pub informative_entities: usize,
    /// Entities present in every set (each is a wasted question).
    pub universal_entities: usize,
    /// Mean entity frequency (sets containing an entity, over distinct
    /// entities).
    pub avg_entity_frequency: f64,
    /// Frequency of the most common entity.
    pub max_entity_frequency: usize,
    /// Mean Jaccard similarity over sampled set pairs.
    pub avg_pairwise_jaccard: f64,
    /// `LB_AD0`: floor on the expected number of questions.
    pub lb_avg_questions: f64,
    /// `LB_H0 = ⌈log₂ n⌉`: floor on the worst-case number of questions.
    pub lb_max_questions: u32,
    /// Worst-case questions if the collection were pairwise disjoint.
    pub worst_case_questions: usize,
}

impl CollectionProfile {
    /// Profiles `collection`, estimating pairwise overlap from at most
    /// `max_pairs` sampled pairs (deterministic from `seed`).
    pub fn new(collection: &Collection, max_pairs: usize, seed: u64) -> Self {
        let n = collection.len();
        let mut scratch = CountScratch::new();
        let view = collection.full_view();
        let mut counts = Vec::new();
        view.count_entities(&mut scratch, &mut counts);
        let distinct = counts.len();
        let informative = counts.iter().filter(|ec| (ec.count as usize) < n).count();
        let universal = distinct - informative;
        let freq_sum: u64 = counts.iter().map(|ec| ec.count as u64).sum();
        let max_freq = counts.iter().map(|ec| ec.count as usize).max().unwrap_or(0);

        let mut rng = Rng::new(seed);
        let mut jaccard_sum = 0.0;
        let mut pairs = 0usize;
        if n >= 2 {
            for _ in 0..max_pairs {
                let i = rng.gen_range(n as u64) as u32;
                let j = rng.gen_range(n as u64) as u32;
                if i == j {
                    continue;
                }
                jaccard_sum += collection
                    .set(crate::entity::SetId(i))
                    .jaccard(collection.set(crate::entity::SetId(j)));
                pairs += 1;
            }
        }

        Self {
            n_sets: n,
            distinct_entities: distinct,
            avg_set_size: collection.avg_set_size(),
            informative_entities: informative,
            universal_entities: universal,
            avg_entity_frequency: if distinct == 0 {
                0.0
            } else {
                freq_sum as f64 / distinct as f64
            },
            max_entity_frequency: max_freq,
            avg_pairwise_jaccard: if pairs == 0 {
                0.0
            } else {
                jaccard_sum / pairs as f64
            },
            lb_avg_questions: AvgDepth::display(AvgDepth::lb0(n as u64), n as u64),
            lb_max_questions: Height::lb0(n as u64) as u32,
            worst_case_questions: n.saturating_sub(1),
        }
    }

    /// A crude predictor of where between `log₂ n` and `n − 1` the expected
    /// question count will land: 0.0 = perfectly splittable, 1.0 = chain.
    ///
    /// Uses the best root split balance as a proxy (disjoint singleton
    /// collections have best balance 1/(n−1) → ≈1.0; bit-indexed
    /// collections have balance 1/2 → 0.0).
    pub fn chain_risk(collection: &Collection) -> f64 {
        let n = collection.len() as f64;
        if n < 2.0 {
            return 0.0;
        }
        let mut scratch = CountScratch::new();
        let view = collection.full_view();
        let inf = view.informative_entities(&mut scratch);
        let best_minority = inf
            .iter()
            .map(|ec| (ec.count as f64).min(n - ec.count as f64))
            .fold(0.0f64, f64::max);
        if best_minority == 0.0 {
            return 1.0;
        }
        // minority/n ∈ (0, 1/2]; rescale to [0, 1) with 1/2 ↦ 0.
        1.0 - 2.0 * best_minority / n
    }
}

/// Groups of sets that no sequence of membership questions can tell apart
/// (possible only when duplicates were inserted without the builder's
/// dedup). With unique sets the result is empty — the invariant behind
/// "tree construction always terminates".
pub fn indistinguishable_groups(collection: &Collection) -> Vec<Vec<crate::entity::SetId>> {
    let mut by_content: setdisc_util::FxHashMap<&crate::set::EntitySet, Vec<crate::entity::SetId>> =
        setdisc_util::FxHashMap::default();
    for (id, set) in collection.iter() {
        by_content.entry(set).or_default().push(id);
    }
    let mut groups: Vec<Vec<crate::entity::SetId>> =
        by_content.into_values().filter(|g| g.len() > 1).collect();
    groups.sort();
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1() -> Collection {
        Collection::from_raw_sets(vec![
            vec![0, 1, 2, 3],
            vec![0, 3, 4],
            vec![0, 1, 2, 3, 5],
            vec![0, 1, 2, 6, 7],
            vec![0, 1, 7, 8],
            vec![0, 1, 9, 10],
            vec![0, 1, 6],
        ])
        .unwrap()
    }

    #[test]
    fn profile_of_figure1() {
        let p = CollectionProfile::new(&figure1(), 200, 1);
        assert_eq!(p.n_sets, 7);
        assert_eq!(p.distinct_entities, 11);
        assert_eq!(p.informative_entities, 10);
        assert_eq!(p.universal_entities, 1, "entity a is in every set");
        assert_eq!(p.max_entity_frequency, 7);
        assert!((p.lb_avg_questions - 20.0 / 7.0).abs() < 1e-12);
        assert_eq!(p.lb_max_questions, 3);
        assert_eq!(p.worst_case_questions, 6);
        assert!(p.avg_pairwise_jaccard > 0.0 && p.avg_pairwise_jaccard < 1.0);
    }

    #[test]
    fn chain_risk_extremes() {
        // Disjoint singletons: worst possible splits.
        let chain = Collection::from_raw_sets((0..16u32).map(|i| vec![i]).collect()).unwrap();
        assert!(CollectionProfile::chain_risk(&chain) > 0.8);
        // Bit-indexed sets: a perfect 50/50 split exists.
        let sets: Vec<Vec<u32>> = (0..16u32)
            .map(|i| {
                (0..4u32)
                    .filter(|b| i >> b & 1 == 1)
                    .map(|b| b + 1)
                    .chain([0])
                    .collect()
            })
            .collect();
        let balanced = Collection::from_raw_sets(sets).unwrap();
        assert!(CollectionProfile::chain_risk(&balanced) < 0.05);
    }

    #[test]
    fn chain_risk_predicts_question_counts() {
        use crate::builder::build_tree;
        use crate::strategy::MostEven;
        let chain = Collection::from_raw_sets((0..16u32).map(|i| vec![i]).collect()).unwrap();
        let sets: Vec<Vec<u32>> = (0..16u32)
            .map(|i| {
                (0..4u32)
                    .filter(|b| i >> b & 1 == 1)
                    .map(|b| b + 1)
                    .chain([0])
                    .collect()
            })
            .collect();
        let balanced = Collection::from_raw_sets(sets).unwrap();
        let t_chain = build_tree(&chain.full_view(), &mut MostEven::new()).unwrap();
        let t_bal = build_tree(&balanced.full_view(), &mut MostEven::new()).unwrap();
        assert!(t_chain.avg_depth() > t_bal.avg_depth() * 1.5);
    }

    #[test]
    fn unique_collections_have_no_indistinguishable_groups() {
        assert!(indistinguishable_groups(&figure1()).is_empty());
    }

    #[test]
    fn singleton_profile() {
        let c = Collection::from_raw_sets(vec![vec![1, 2]]).unwrap();
        let p = CollectionProfile::new(&c, 10, 0);
        assert_eq!(p.informative_entities, 0);
        assert_eq!(p.universal_entities, 2);
        assert_eq!(p.lb_max_questions, 0);
        assert_eq!(CollectionProfile::chain_risk(&c), 0.0);
    }
}
