//! Interactive set discovery — a reproduction of Hasnat & Rafiei,
//! *Interactive Set Discovery* (EDBT 2023).
//!
//! Given a closed collection of unique sets and a handful of example
//! elements, the library narrows down the user's *target set* by asking
//! yes/no membership questions ("is entity *e* in your set?"), choosing each
//! question to minimize the expected (or worst-case) number of questions.
//!
//! # Quick start
//!
//! ```
//! use setdisc_core::prelude::*;
//!
//! // The seven sets from Figure 1 of the paper, over entities a..k = 0..10.
//! let sets: Vec<Vec<u32>> = vec![
//!     vec![0, 1, 2, 3],    // S1 = {a,b,c,d}
//!     vec![0, 3, 4],       // S2 = {a,d,e}
//!     vec![0, 1, 2, 3, 5], // S3 = {a,b,c,d,f}
//!     vec![0, 1, 2, 6, 7], // S4 = {a,b,c,g,h}
//!     vec![0, 1, 7, 8],    // S5 = {a,b,h,i}
//!     vec![0, 1, 9, 10],   // S6 = {a,b,j,k}
//!     vec![0, 1, 6],       // S7 = {a,b,g}
//! ];
//! let collection = Collection::from_raw_sets(sets).unwrap();
//!
//! // Build a decision tree with 2-step lookahead + pruning, AD cost metric.
//! let mut strategy = KLp::<AvgDepth>::new(2);
//! let tree = build_tree(&collection.full_view(), &mut strategy).unwrap();
//! assert_eq!(tree.n_leaves(), 7);
//! // The optimal average depth for 7 sets is 20/7 ≈ 2.857 (Lemma 3.3).
//! assert_eq!(tree.total_depth(), 20);
//!
//! // Interactively discover S5 = {a,b,h,i} from the example {i}.
//! let target = collection.set(SetId(4)).clone();
//! let mut session = Session::new(&collection, &[EntityId(8)], strategy);
//! let outcome = session.run(&mut SimulatedOracle::new(&target)).unwrap();
//! assert_eq!(outcome.candidates, vec![SetId(4)]);
//! ```
//!
//! # Layout
//!
//! * [`entity`], [`set`], [`collection`], [`subcollection`] — the data model:
//!   interned entities, sorted sets, deduplicated collections with an
//!   inverted index, and lightweight sub-collection views.
//! * [`bitset`] — the word-parallel substrate under the hot kernels:
//!   dense `SetId` bitmaps and the per-collection entity-postings index
//!   that make partitioning an `AND`/`ANDNOT` + popcount pass.
//! * [`cost`] — the AD/H cost models and lower bounds of §3–4.1, in exact
//!   integer arithmetic.
//! * [`strategy`] — greedy entity selection: most-even partitioning,
//!   information gain, indistinguishable pairs, 1-step lower bound (§4.2).
//! * [`lookahead`] — **k-LP** (Algorithm 1) with the pruning rule of
//!   Lemma 4.4, the beam variants k-LPLE / k-LPLVE (§4.4), and the unpruned
//!   gain-k baseline.
//! * [`tree`], [`builder`] — decision trees and offline construction
//!   (Algorithm 3).
//! * [`engine`] — the sans-IO Algorithm-2 state machine, generic over how
//!   the collection is held (borrowed sessions vs `Arc`-owning sessions).
//! * [`discovery`] — the interactive loop (Algorithm 2) with pluggable
//!   oracles and halt conditions, layered on the engine.
//! * [`optimal`] — exact optimal trees by memoized branch-and-bound, for
//!   ground truth on small collections.
//! * [`weights`] — integer prior tables and the weighted-AD bounds of §6;
//!   the engine's session modes (backtracking recovery for erroneous
//!   answers, multiple-choice questions) live in [`engine`] itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod bitset;
pub mod builder;
pub mod collection;
pub mod cost;
pub mod discovery;
pub mod engine;
pub mod entity;
pub mod error;
pub mod io;
pub mod lookahead;
pub mod optimal;
pub mod set;
pub mod strategy;
pub mod subcollection;
pub mod transform;
pub mod tree;
pub mod weights;

/// Convenient glob-import of the commonly used types.
pub mod prelude {
    pub use crate::builder::build_tree;
    pub use crate::collection::{Collection, CollectionBuilder};
    pub use crate::cost::{AvgDepth, CostModel, Height};
    pub use crate::discovery::{Answer, Oracle, Session, SimulatedOracle};
    pub use crate::engine::{CollectionRef, Engine, OwnedSession};
    pub use crate::entity::{EntityId, EntityInterner, SetId};
    pub use crate::error::SetDiscError;
    pub use crate::lookahead::{GainK, KLp, KLpBeam};
    pub use crate::set::EntitySet;
    pub use crate::strategy::{IndistinguishablePairs, InfoGain, Lb1, MostEven, SelectionStrategy};
    pub use crate::subcollection::SubCollection;
    pub use crate::tree::DecisionTree;
    pub use crate::weights::WeightTable;
}

pub use prelude::*;
