//! Cost models and lower bounds (paper §3, §4.1, §4.3.1).
//!
//! The paper optimizes one of two tree costs:
//!
//! * **AD** — average leaf depth (expected number of questions), eq. (1), and
//! * **H** — tree height (worst-case number of questions), eq. (2).
//!
//! All comparisons the pruning rule (Lemma 4.4) makes must be *exact*: an
//! off-by-one from float rounding could prune the true optimum. We therefore
//! scale AD by the collection size and track **total depth**
//! `TD(C) = AD(C)·|C|` — an integer. The paper's formulas translate directly:
//!
//! | paper (eq.) | scaled integer form |
//! |-------------|---------------------|
//! | `LB_AD0(C) = ⌈n·log₂n⌉/n` (1) | `lb0(n) = ⌈n·log₂n⌉` |
//! | `LB_AD_k(C,e) = (n₁·LB_{k-1}(C₁)+n₂·LB_{k-1}(C₂))/n + 1` (6) | `combine = l₁ + l₂ + n` |
//! | `UL(C₁) = ((AFLV−1)·n − n₂·LB_AD0(C₂))/n₁` (11) | `ul₁ = AFLV − n − lb0(n₂)` |
//! | `UL(C₂) = ((AFLV−1)·n − n₁·LB_{k-1}(C₁))/n₂` (13) | `ul₂ = AFLV − n − l₁` |
//!
//! Height needs no scaling; eqs. (2), (7), (12), (14) are used as printed.
//!
//! Upper limits are *exclusive*: a child result is only useful when it is
//! strictly below the limit, matching `l < ul` on line 34 of Algorithm 1.

use setdisc_util::math::{ceil_log2, ceil_n_log2_n};

/// Scaled integer cost. For [`AvgDepth`] this is total leaf depth; for
/// [`Height`] it is the height itself.
pub type Cost = u64;

/// Upper limit representing "no constraint" (initial AFLV of Algorithm 1).
pub const UNBOUNDED: Cost = u64::MAX;

/// A cost metric over decision trees, in scaled integer arithmetic.
///
/// Implementations are zero-sized tags ([`AvgDepth`], [`Height`]) so the
/// lookahead machinery monomorphizes per metric with no dynamic dispatch in
/// the hot loop.
pub trait CostModel: Copy + Default + Send + Sync + 'static {
    /// Human-readable metric name ("AD" / "H").
    const NAME: &'static str;

    /// Zero-lookahead lower bound `LB₀` for a collection of `n ≥ 1` sets.
    fn lb0(n: u64) -> Cost;

    /// Cost of a node over `n` sets whose children achieved `l1` and `l2`.
    fn combine(n: u64, l1: Cost, l2: Cost) -> Cost;

    /// Exclusive upper limit for the first child's cost, given the current
    /// best `aflv` (exclusive), the node size `n`, and the other child's
    /// `lb0`. `None` means no first-child cost can possibly qualify — prune.
    fn ul_first(aflv: Cost, n: u64, other_lb0: Cost) -> Option<Cost>;

    /// Exclusive upper limit for the second child's cost once the first
    /// child's actual cost `l1` is known.
    fn ul_second(aflv: Cost, n: u64, l1: Cost) -> Option<Cost>;

    /// Converts a scaled cost over `n` sets to the paper's reported number
    /// (average depth, or height unchanged).
    fn display(cost: Cost, n: u64) -> f64;
}

/// Average leaf depth, scaled to total depth (integer).
#[derive(Copy, Clone, Default, Debug, PartialEq, Eq)]
pub struct AvgDepth;

/// Tree height (worst-case questions).
#[derive(Copy, Clone, Default, Debug, PartialEq, Eq)]
pub struct Height;

impl CostModel for AvgDepth {
    const NAME: &'static str = "AD";

    #[inline]
    fn lb0(n: u64) -> Cost {
        debug_assert!(n >= 1);
        if n == 1 {
            0
        } else {
            ceil_n_log2_n(n)
        }
    }

    #[inline]
    fn combine(n: u64, l1: Cost, l2: Cost) -> Cost {
        // Every one of the n leaves gains one level below this node.
        l1 + l2 + n
    }

    #[inline]
    fn ul_first(aflv: Cost, n: u64, other_lb0: Cost) -> Option<Cost> {
        if aflv == UNBOUNDED {
            return Some(UNBOUNDED);
        }
        let ul = aflv.checked_sub(n)?.checked_sub(other_lb0)?;
        (ul > 0).then_some(ul)
    }

    #[inline]
    fn ul_second(aflv: Cost, n: u64, l1: Cost) -> Option<Cost> {
        if aflv == UNBOUNDED {
            return Some(UNBOUNDED);
        }
        let ul = aflv.checked_sub(n)?.checked_sub(l1)?;
        (ul > 0).then_some(ul)
    }

    #[inline]
    fn display(cost: Cost, n: u64) -> f64 {
        if n == 0 {
            0.0
        } else {
            cost as f64 / n as f64
        }
    }
}

impl CostModel for Height {
    const NAME: &'static str = "H";

    #[inline]
    fn lb0(n: u64) -> Cost {
        debug_assert!(n >= 1);
        ceil_log2(n)
    }

    #[inline]
    fn combine(_n: u64, l1: Cost, l2: Cost) -> Cost {
        l1.max(l2) + 1
    }

    #[inline]
    fn ul_first(aflv: Cost, _n: u64, _other_lb0: Cost) -> Option<Cost> {
        if aflv == UNBOUNDED {
            return Some(UNBOUNDED);
        }
        let ul = aflv.checked_sub(1)?;
        (ul > 0).then_some(ul)
    }

    #[inline]
    fn ul_second(aflv: Cost, n: u64, l1: Cost) -> Option<Cost> {
        // Same as ul_first (eq. 14), but the first child's result must also
        // still leave room: if l1 + 1 ≥ aflv nothing can qualify.
        if aflv == UNBOUNDED {
            return Some(UNBOUNDED);
        }
        let _ = n;
        if l1.saturating_add(1) >= aflv {
            return None;
        }
        let ul = aflv.checked_sub(1)?;
        (ul > 0).then_some(ul)
    }

    #[inline]
    fn display(cost: Cost, _n: u64) -> f64 {
        cost as f64
    }
}

/// One-step lower bound `LB₁(C, e)` (eqs. 3–4) for an entity splitting `n`
/// sets into `n1` and `n2 = n − n1`.
#[inline]
pub fn lb1<M: CostModel>(n: u64, n1: u64) -> Cost {
    debug_assert!(n1 >= 1 && n1 < n, "entity must be informative");
    M::combine(n, M::lb0(n1), M::lb0(n - n1))
}

/// A dense per-search memo of `LB₀` values indexed by collection size.
///
/// The candidate-ranking loops evaluate `LB₁` for every informative entity
/// of every lookahead node; for [`AvgDepth`] each evaluation would probe
/// the thread-local `⌈n·log₂ n⌉` memo twice, and the thread-local access
/// plus bounds discipline showed up in tree-construction profiles. A
/// search-owned flat table turns the pair into two indexed loads. Sizes are
/// bounded by the largest view the search ever sees, so the table is filled
/// once per search (and only grows).
pub struct Lb0Table<M: CostModel> {
    vals: Vec<Cost>,
    _metric: std::marker::PhantomData<M>,
}

impl<M: CostModel> Default for Lb0Table<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: CostModel> Lb0Table<M> {
    /// Empty table; fill with [`Self::ensure`].
    pub fn new() -> Self {
        Self {
            vals: vec![0],
            _metric: std::marker::PhantomData,
        }
    }

    /// Extends the table to cover sizes `0..=n`.
    pub fn ensure(&mut self, n: u64) {
        let want = n as usize + 1;
        if self.vals.len() < want {
            for i in self.vals.len()..want {
                self.vals.push(M::lb0(i as u64));
            }
        }
    }

    /// `LB₀(n)`; `n` must be covered by a prior [`Self::ensure`].
    #[inline]
    pub fn lb0(&self, n: u64) -> Cost {
        self.vals[n as usize]
    }

    /// `LB₁` of an `n1`/`n − n1` split, from two table loads.
    #[inline]
    pub fn lb1(&self, n: u64, n1: u64) -> Cost {
        debug_assert!(n1 >= 1 && n1 < n, "entity must be informative");
        M::combine(n, self.lb0(n1), self.lb0(n - n1))
    }
}

/// Partition imbalance `||C₁| − |C₂||` — the sort key realizing "most even
/// partitioning first" (§4.4.1, line 11 of Algorithm 1).
#[inline]
pub fn imbalance(n: u64, n1: u64) -> u64 {
    let n2 = n - n1;
    n1.abs_diff(n2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lb0_avg_depth_paper_values() {
        // §3: 7 sets → LB_AD = 20/7 ≈ 2.857 (scaled: 20).
        assert_eq!(AvgDepth::lb0(7), 20);
        assert_eq!(AvgDepth::lb0(1), 0);
        assert_eq!(AvgDepth::lb0(2), 2);
        assert_eq!(AvgDepth::lb0(4), 8);
    }

    #[test]
    fn lb0_height_values() {
        assert_eq!(Height::lb0(1), 0);
        assert_eq!(Height::lb0(2), 1);
        assert_eq!(Height::lb0(7), 3);
        assert_eq!(Height::lb0(8), 3);
        assert_eq!(Height::lb0(9), 4);
    }

    #[test]
    fn paper_pruning_example_heights() {
        // §4.3: in collection C1, entities c and d split 3/4:
        // LB_H1 = max(⌈log₂3⌉, ⌈log₂4⌉) + 1 = 3; other entities split
        // at best 2/5 or 1/6 → LB_H1 = max(⌈log₂·⌉..) + 1 = 4 when the larger
        // side has 5 or 6 sets.
        assert_eq!(lb1::<Height>(7, 3), 3);
        assert_eq!(lb1::<Height>(7, 4), 3);
        assert_eq!(lb1::<Height>(7, 2), 4);
        assert_eq!(lb1::<Height>(7, 1), 4);
        assert_eq!(lb1::<Height>(7, 6), 4);
    }

    #[test]
    fn lb1_avg_depth_most_even_is_near_minimal() {
        // Lemma 4.3(c) holds exactly for the real-valued n·log₂n; with the
        // paper's ceilings the most even split can lose by at most 1 scaled
        // unit to a split landing on a power of two (first at n=35, where
        // 16/19 gives 64+81=145 < 146=70+76 of 17/18). This is why the
        // lookahead sorts candidates by LB₁ rather than by imbalance alone.
        let mut saw_strict_counterexample = false;
        for n in 2u64..200 {
            let costs: Vec<Cost> = (1..n).map(|n1| lb1::<AvgDepth>(n, n1)).collect();
            let min = *costs.iter().min().unwrap();
            let most_even = lb1::<AvgDepth>(n, n / 2);
            assert!(most_even <= min + 1, "n={n}: {most_even} vs {min}");
            if most_even > min {
                saw_strict_counterexample = true;
            }
        }
        assert!(saw_strict_counterexample, "n=35 counterexample expected");
        // Spot-check the documented case.
        assert_eq!(lb1::<AvgDepth>(35, 16), 64 + 81 + 35);
        assert_eq!(lb1::<AvgDepth>(35, 17), 70 + 76 + 35);
    }

    #[test]
    fn lb1_height_most_even_is_minimal() {
        for n in 2u64..60 {
            let costs: Vec<Cost> = (1..n).map(|n1| lb1::<Height>(n, n1)).collect();
            let min = *costs.iter().min().unwrap();
            assert_eq!(lb1::<Height>(n, n / 2), min, "n={n}");
        }
    }

    #[test]
    fn combine_avg_depth_adds_level() {
        // Two leaves under a node: each at depth 1 → total depth 2.
        assert_eq!(AvgDepth::combine(2, 0, 0), 2);
        // 3+4 split with perfect subtrees: ⌈3log3⌉=5, ⌈4log4⌉=8 → 5+8+7=20,
        // i.e. AD 20/7 — the optimal Fig 2a tree.
        assert_eq!(AvgDepth::combine(7, AvgDepth::lb0(3), AvgDepth::lb0(4)), 20);
    }

    #[test]
    fn ul_first_avg_depth() {
        // aflv=20 (scaled), n=7, other side lb0=8 → ul = 20-7-8 = 5:
        // the 3-set child must come in strictly below 5.
        assert_eq!(AvgDepth::ul_first(20, 7, 8), Some(5));
        // Exactly zero room → prune.
        assert_eq!(AvgDepth::ul_first(15, 7, 8), None);
        // Underflow → prune.
        assert_eq!(AvgDepth::ul_first(10, 7, 8), None);
        assert_eq!(AvgDepth::ul_first(UNBOUNDED, 7, 8), Some(UNBOUNDED));
    }

    #[test]
    fn ul_second_avg_depth_uses_actual_l1() {
        assert_eq!(AvgDepth::ul_second(20, 7, 5), Some(8));
        assert_eq!(AvgDepth::ul_second(20, 7, 13), None);
    }

    #[test]
    fn ul_height() {
        assert_eq!(Height::ul_first(3, 7, 2), Some(2));
        assert_eq!(Height::ul_first(1, 7, 0), None);
        assert_eq!(Height::ul_second(3, 7, 1), Some(2));
        // First child already at aflv-1 → second child can't help.
        assert_eq!(Height::ul_second(3, 7, 2), None);
        assert_eq!(Height::ul_second(UNBOUNDED, 7, 100), Some(UNBOUNDED));
    }

    #[test]
    fn display_unscales() {
        assert!((AvgDepth::display(20, 7) - 2.857142857).abs() < 1e-9);
        assert_eq!(Height::display(3, 7), 3.0);
    }

    #[test]
    fn lb0_table_matches_direct_evaluation() {
        let mut ad = Lb0Table::<AvgDepth>::new();
        let mut h = Lb0Table::<Height>::new();
        ad.ensure(10);
        ad.ensure(3); // shrinking request is a no-op
        ad.ensure(100);
        h.ensure(100);
        for n in 1..=100u64 {
            assert_eq!(ad.lb0(n), AvgDepth::lb0(n), "AD n={n}");
            assert_eq!(h.lb0(n), Height::lb0(n), "H n={n}");
            for n1 in 1..n {
                assert_eq!(ad.lb1(n, n1), lb1::<AvgDepth>(n, n1), "AD {n1}/{n}");
                assert_eq!(h.lb1(n, n1), lb1::<Height>(n, n1), "H {n1}/{n}");
            }
        }
    }

    #[test]
    fn imbalance_symmetric() {
        assert_eq!(imbalance(7, 3), 1);
        assert_eq!(imbalance(7, 4), 1);
        assert_eq!(imbalance(7, 1), 5);
        assert_eq!(imbalance(8, 4), 0);
    }

    #[test]
    fn ul_respects_exclusive_semantics() {
        // A child achieving exactly ul must NOT qualify: combining it back
        // reaches aflv, not below. Check the algebra for AD.
        let aflv = 30u64;
        let n = 10u64;
        let lb0_c2 = 6u64;
        let ul1 = AvgDepth::ul_first(aflv, n, lb0_c2).unwrap();
        // If l1 == ul1 then combine(n, l1, lb0_c2) == aflv → not an improvement.
        assert_eq!(AvgDepth::combine(n, ul1, lb0_c2), aflv);
    }
}
