//! Full binary decision trees over a collection of sets (paper §3).
//!
//! Leaves hold candidate sets; internal nodes hold membership questions.
//! The tree is arena-allocated (`Vec<Node>` + indices) and every traversal
//! is iterative, so trees of pathological height (up to `n − 1` for disjoint
//! sets) cannot overflow the stack.

use crate::collection::Collection;
use crate::entity::{EntityId, SetId};
use crate::error::{Result, SetDiscError};
use crate::subcollection::SubCollection;
use setdisc_util::FxHashSet;

/// Node index within a [`DecisionTree`] arena.
pub type NodeId = u32;

/// A tree node: either a leaf naming a candidate set, or an internal
/// membership question with yes/no children.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Node {
    /// Terminal node holding the discovered set.
    Leaf {
        /// The candidate set at this leaf.
        set: SetId,
    },
    /// A membership question about `entity`.
    Internal {
        /// The entity asked about.
        entity: EntityId,
        /// Child followed on a "yes" answer.
        yes: NodeId,
        /// Child followed on a "no" answer.
        no: NodeId,
    },
}

/// A full binary decision tree.
pub struct DecisionTree {
    nodes: Vec<Node>,
    root: NodeId,
}

/// Result of oracle-driven traversal of a precomputed tree
/// ([`DecisionTree::discover`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeDiscovery {
    /// Surviving candidate sets (one element = resolved).
    pub candidates: Vec<SetId>,
    /// Yes/no questions answered.
    pub questions: usize,
}

impl TreeDiscovery {
    /// The discovered set when traversal reached a leaf.
    pub fn discovered(&self) -> Option<SetId> {
        match self.candidates.as_slice() {
            [one] => Some(*one),
            _ => None,
        }
    }
}

impl DecisionTree {
    /// Builds from a node arena and root index (used by the builder).
    pub(crate) fn from_parts(nodes: Vec<Node>, root: NodeId) -> Self {
        debug_assert!((root as usize) < nodes.len());
        Self { nodes, root }
    }

    /// Root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The node with the given id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// Total node count (`2·leaves − 1` for a full binary tree).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Number of internal (question) nodes.
    pub fn n_internal(&self) -> usize {
        self.nodes.len() - self.n_leaves()
    }

    /// `(set, depth)` for every leaf, in left-to-right (yes-first) order.
    pub fn leaf_depths(&self) -> Vec<(SetId, u32)> {
        let mut out = Vec::new();
        let mut stack = vec![(self.root, 0u32)];
        while let Some((id, depth)) = stack.pop() {
            match self.nodes[id as usize] {
                Node::Leaf { set } => out.push((set, depth)),
                Node::Internal { yes, no, .. } => {
                    stack.push((no, depth + 1));
                    stack.push((yes, depth + 1));
                }
            }
        }
        out
    }

    /// Sum of leaf depths — the scaled AD cost (Definition 3.2 × |C|).
    pub fn total_depth(&self) -> u64 {
        self.leaf_depths().iter().map(|&(_, d)| d as u64).sum()
    }

    /// Average leaf depth — the paper's `cost(T)` under AD.
    pub fn avg_depth(&self) -> f64 {
        let leaves = self.n_leaves();
        if leaves == 0 {
            0.0
        } else {
            self.total_depth() as f64 / leaves as f64
        }
    }

    /// Height — the paper's `cost(T)` under H (depth of the deepest leaf).
    pub fn height(&self) -> u32 {
        self.leaf_depths()
            .iter()
            .map(|&(_, d)| d)
            .max()
            .unwrap_or(0)
    }

    /// Depth of the leaf holding `set`, if present.
    pub fn depth_of(&self, set: SetId) -> Option<u32> {
        self.leaf_depths()
            .into_iter()
            .find(|&(s, _)| s == set)
            .map(|(_, d)| d)
    }

    /// The question/answer path from the root to `set`'s leaf.
    pub fn path_to(&self, set: SetId) -> Option<Vec<(EntityId, bool)>> {
        // Iterative DFS carrying the path; paths are short (≤ height) but
        // the traversal itself must not recurse.
        let mut stack = vec![(self.root, Vec::new())];
        while let Some((id, path)) = stack.pop() {
            match self.nodes[id as usize] {
                Node::Leaf { set: s } => {
                    if s == set {
                        return Some(path);
                    }
                }
                Node::Internal { entity, yes, no } => {
                    let mut yes_path = path.clone();
                    yes_path.push((entity, true));
                    let mut no_path = path;
                    no_path.push((entity, false));
                    stack.push((no, no_path));
                    stack.push((yes, yes_path));
                }
            }
        }
        None
    }

    /// Structural + semantic validation against the sub-collection the tree
    /// was built for:
    ///
    /// * every node is reachable exactly once (proper tree, no sharing);
    /// * the leaves are exactly `view.ids()`, each once;
    /// * every leaf's set is consistent with its root path (contains every
    ///   yes-entity, no no-entity) — i.e. the tree really discovers it.
    pub fn validate(&self, view: &SubCollection<'_>) -> Result<()> {
        let collection = view.collection();
        let mut seen_nodes = vec![false; self.nodes.len()];
        let mut leaf_sets: Vec<SetId> = Vec::new();
        let mut stack: Vec<(NodeId, Vec<(EntityId, bool)>)> = vec![(self.root, Vec::new())];
        while let Some((id, path)) = stack.pop() {
            let slot = seen_nodes
                .get_mut(id as usize)
                .ok_or_else(|| SetDiscError::InvalidTree(format!("node id {id} out of range")))?;
            if *slot {
                return Err(SetDiscError::InvalidTree(format!(
                    "node {id} reachable twice"
                )));
            }
            *slot = true;
            match self.nodes[id as usize] {
                Node::Leaf { set } => {
                    let s = collection.try_set(set)?;
                    for &(e, must_contain) in &path {
                        if s.contains(e) != must_contain {
                            return Err(SetDiscError::InvalidTree(format!(
                                "leaf {set} inconsistent with path on {e}"
                            )));
                        }
                    }
                    leaf_sets.push(set);
                }
                Node::Internal { entity, yes, no } => {
                    if yes == no {
                        return Err(SetDiscError::InvalidTree(format!(
                            "node {id} children collide"
                        )));
                    }
                    let mut yes_path = path.clone();
                    yes_path.push((entity, true));
                    let mut no_path = path;
                    no_path.push((entity, false));
                    stack.push((no, no_path));
                    stack.push((yes, yes_path));
                }
            }
        }
        if !seen_nodes.iter().all(|&s| s) {
            return Err(SetDiscError::InvalidTree("orphan nodes in arena".into()));
        }
        leaf_sets.sort_unstable();
        if leaf_sets != view.ids() {
            return Err(SetDiscError::InvalidTree(
                "leaves do not match the collection".into(),
            ));
        }
        Ok(())
    }

    /// Follows the tree with a live oracle — the §4.5 offline-construction
    /// mode: the tree is built once, discovery asks only the questions on a
    /// single root-to-leaf path. An [`crate::discovery::Answer::Unknown`]
    /// reply cannot be rerouted in a fixed tree, so traversal stops and all
    /// leaves under the current node are returned as the surviving
    /// candidates.
    pub fn discover(&self, oracle: &mut dyn crate::discovery::Oracle) -> TreeDiscovery {
        use crate::discovery::Answer;
        let mut id = self.root;
        let mut questions = 0usize;
        loop {
            match self.nodes[id as usize] {
                Node::Leaf { set } => {
                    return TreeDiscovery {
                        candidates: vec![set],
                        questions,
                    }
                }
                Node::Internal { entity, yes, no } => match oracle.answer(entity) {
                    Answer::Yes => {
                        questions += 1;
                        id = yes;
                    }
                    Answer::No => {
                        questions += 1;
                        id = no;
                    }
                    Answer::Unknown => {
                        let mut candidates: Vec<SetId> = Vec::new();
                        let mut stack = vec![id];
                        while let Some(nid) = stack.pop() {
                            match self.nodes[nid as usize] {
                                Node::Leaf { set } => candidates.push(set),
                                Node::Internal { yes, no, .. } => {
                                    stack.push(no);
                                    stack.push(yes);
                                }
                            }
                        }
                        candidates.sort_unstable();
                        return TreeDiscovery {
                            candidates,
                            questions,
                        };
                    }
                },
            }
        }
    }

    /// Simulates answering questions for `target`, returning the number of
    /// questions to reach a leaf and the leaf's set.
    pub fn descend(&self, collection: &Collection, target: &crate::set::EntitySet) -> (u32, SetId) {
        let _ = collection;
        let mut id = self.root;
        let mut questions = 0;
        loop {
            match self.nodes[id as usize] {
                Node::Leaf { set } => return (questions, set),
                Node::Internal { entity, yes, no } => {
                    questions += 1;
                    id = if target.contains(entity) { yes } else { no };
                }
            }
        }
    }

    /// Serializes to a line-based pre-order text format:
    /// `I <entity>` for internal nodes (yes subtree first), `L <set>` for
    /// leaves. Stable across versions; parse with [`DecisionTree::from_text`].
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            match self.nodes[id as usize] {
                Node::Leaf { set } => {
                    let _ = writeln!(out, "L {}", set.0);
                }
                Node::Internal { entity, yes, no } => {
                    let _ = writeln!(out, "I {}", entity.0);
                    stack.push(no);
                    stack.push(yes);
                }
            }
        }
        out
    }

    /// Parses the format produced by [`DecisionTree::to_text`].
    pub fn from_text(text: &str) -> Result<Self> {
        // Iterative pre-order reconstruction: a stack of parent slots
        // waiting for children.
        enum Slot {
            Root,
            Yes(NodeId),
            No(NodeId),
        }
        let mut nodes: Vec<Node> = Vec::new();
        let mut pending: Vec<Slot> = vec![Slot::Root];
        let mut root: Option<NodeId> = None;
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let slot = pending.pop().ok_or_else(|| {
                SetDiscError::InvalidTree(format!("line {}: unexpected extra node", lineno + 1))
            })?;
            let (kind, value) = line.split_once(' ').ok_or_else(|| {
                SetDiscError::InvalidTree(format!("line {}: malformed", lineno + 1))
            })?;
            let value: u32 = value
                .parse()
                .map_err(|_| SetDiscError::InvalidTree(format!("line {}: bad id", lineno + 1)))?;
            let id = nodes.len() as NodeId;
            match kind {
                "L" => nodes.push(Node::Leaf { set: SetId(value) }),
                "I" => {
                    nodes.push(Node::Internal {
                        entity: EntityId(value),
                        yes: 0,
                        no: 0,
                    });
                    // Pre-order: yes child arrives first → push No first.
                    pending.push(Slot::No(id));
                    pending.push(Slot::Yes(id));
                }
                other => {
                    return Err(SetDiscError::InvalidTree(format!(
                        "line {}: unknown node kind {other:?}",
                        lineno + 1
                    )))
                }
            }
            match slot {
                Slot::Root => root = Some(id),
                Slot::Yes(parent) => {
                    if let Node::Internal { yes, .. } = &mut nodes[parent as usize] {
                        *yes = id;
                    }
                }
                Slot::No(parent) => {
                    if let Node::Internal { no, .. } = &mut nodes[parent as usize] {
                        *no = id;
                    }
                }
            }
        }
        if !pending.is_empty() {
            return Err(SetDiscError::InvalidTree("truncated tree text".into()));
        }
        let root = root.ok_or_else(|| SetDiscError::InvalidTree("empty tree text".into()))?;
        Ok(Self { nodes, root })
    }

    /// ASCII rendering (entity names resolved through `names` when given).
    pub fn render(&self, names: Option<&crate::entity::EntityInterner>) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        // (node, depth, branch label)
        let mut stack: Vec<(NodeId, usize, &str)> = vec![(self.root, 0, "")];
        while let Some((id, depth, label)) = stack.pop() {
            let indent = "  ".repeat(depth);
            match self.nodes[id as usize] {
                Node::Leaf { set } => {
                    let _ = writeln!(out, "{indent}{label}{set}");
                }
                Node::Internal { entity, yes, no } => {
                    let q = names.map_or_else(|| entity.to_string(), |n| n.display(entity));
                    let _ = writeln!(out, "{indent}{label}[{q}?]");
                    stack.push((no, depth + 1, "n: "));
                    stack.push((yes, depth + 1, "y: "));
                }
            }
        }
        out
    }

    /// The distinct entities asked anywhere in the tree.
    pub fn entities_used(&self) -> FxHashSet<EntityId> {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                Node::Internal { entity, .. } => Some(*entity),
                Node::Leaf { .. } => None,
            })
            .collect()
    }
}

impl std::fmt::Debug for DecisionTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "DecisionTree({} leaves, height {}, avg depth {:.3})",
            self.n_leaves(),
            self.height(),
            self.avg_depth()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_tree;
    use crate::collection::Collection;
    use crate::strategy::MostEven;

    fn figure1() -> Collection {
        Collection::from_raw_sets(vec![
            vec![0, 1, 2, 3],
            vec![0, 3, 4],
            vec![0, 1, 2, 3, 5],
            vec![0, 1, 2, 6, 7],
            vec![0, 1, 7, 8],
            vec![0, 1, 9, 10],
            vec![0, 1, 6],
        ])
        .unwrap()
    }

    /// Hand-build the optimal Fig 2a tree:
    /// root d → yes: (b → yes: (f → S3/S1), no: S2), no: (g → (h → S4/S7), (j → S6/S5)).
    fn fig2a() -> DecisionTree {
        let nodes = vec![
            /* 0 */
            Node::Internal {
                entity: EntityId(3),
                yes: 1,
                no: 6,
            },
            /* 1 */
            Node::Internal {
                entity: EntityId(1),
                yes: 2,
                no: 5,
            },
            /* 2 */
            Node::Internal {
                entity: EntityId(5),
                yes: 3,
                no: 4,
            },
            /* 3 */ Node::Leaf { set: SetId(2) },
            /* 4 */ Node::Leaf { set: SetId(0) },
            /* 5 */ Node::Leaf { set: SetId(1) },
            /* 6 */
            Node::Internal {
                entity: EntityId(6),
                yes: 7,
                no: 10,
            },
            /* 7 */
            Node::Internal {
                entity: EntityId(7),
                yes: 8,
                no: 9,
            },
            /* 8 */ Node::Leaf { set: SetId(3) },
            /* 9 */ Node::Leaf { set: SetId(6) },
            /* 10 */
            Node::Internal {
                entity: EntityId(9),
                yes: 11,
                no: 12,
            },
            /* 11 */ Node::Leaf { set: SetId(5) },
            /* 12 */ Node::Leaf { set: SetId(4) },
        ];
        DecisionTree::from_parts(nodes, 0)
    }

    #[test]
    fn fig2a_costs_match_paper() {
        let t = fig2a();
        assert_eq!(t.n_leaves(), 7);
        assert_eq!(t.n_internal(), 6);
        // §3: AD of Fig 2a is 2.857 = 20/7 — the optimum; height is 3.
        assert_eq!(t.total_depth(), 20);
        assert!((t.avg_depth() - 20.0 / 7.0).abs() < 1e-12);
        assert_eq!(t.height(), 3);
        // S2 is found with two questions (d yes, b no).
        assert_eq!(t.depth_of(SetId(1)), Some(2));
    }

    #[test]
    fn fig2a_validates_against_collection() {
        let c = figure1();
        fig2a().validate(&c.full_view()).unwrap();
    }

    #[test]
    fn validation_catches_wrong_leaf() {
        let c = figure1();
        let mut t = fig2a();
        // Swap two leaves: paths become inconsistent.
        t.nodes[3] = Node::Leaf { set: SetId(0) };
        t.nodes[4] = Node::Leaf { set: SetId(2) };
        let err = t.validate(&c.full_view()).unwrap_err();
        assert!(matches!(err, SetDiscError::InvalidTree(_)));
    }

    #[test]
    fn validation_catches_shared_node() {
        let c = figure1();
        let mut t = fig2a();
        if let Node::Internal { no, .. } = &mut t.nodes[0] {
            *no = 1; // share the yes-subtree → node 1 reachable twice
        }
        assert!(t.validate(&c.full_view()).is_err());
    }

    #[test]
    fn path_to_matches_descend() {
        let c = figure1();
        let t = fig2a();
        for (id, set) in c.iter() {
            let path = t.path_to(id).unwrap();
            for (e, must) in &path {
                assert_eq!(set.contains(*e), *must);
            }
            let (q, found) = t.descend(&c, set);
            assert_eq!(found, id);
            assert_eq!(q as usize, path.len());
        }
    }

    #[test]
    fn descend_counts_questions() {
        let c = figure1();
        let t = fig2a();
        // S2 = {a,d,e}: d? yes, b? no → 2 questions.
        let (q, s) = t.descend(&c, c.set(SetId(1)));
        assert_eq!((q, s), (2, SetId(1)));
    }

    #[test]
    fn text_roundtrip() {
        let t = fig2a();
        let text = t.to_text();
        let back = DecisionTree::from_text(&text).unwrap();
        assert_eq!(back.to_text(), text);
        assert_eq!(back.n_leaves(), t.n_leaves());
        assert_eq!(back.total_depth(), t.total_depth());
        let c = figure1();
        back.validate(&c.full_view()).unwrap();
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(DecisionTree::from_text("").is_err());
        assert!(DecisionTree::from_text("X 1").is_err());
        assert!(
            DecisionTree::from_text("I 1\nL 2").is_err(),
            "missing child"
        );
        assert!(DecisionTree::from_text("L x").is_err());
        assert!(DecisionTree::from_text("L 1\nL 2").is_err(), "extra node");
    }

    #[test]
    fn render_contains_questions_and_leaves() {
        let t = fig2a();
        let ascii = t.render(None);
        assert!(ascii.contains("[e3?]"));
        assert!(ascii.contains("S4"));
        let mut names = crate::entity::EntityInterner::new();
        for n in ["a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k"] {
            names.intern(n);
        }
        let ascii = t.render(Some(&names));
        assert!(ascii.contains("[d?]"));
    }

    #[test]
    fn entities_used_only_internal() {
        let t = fig2a();
        let used = t.entities_used();
        assert_eq!(used.len(), 6);
        assert!(used.contains(&EntityId(3)));
        assert!(!used.contains(&EntityId(0)));
    }

    #[test]
    fn oracle_driven_traversal_matches_descend() {
        use crate::discovery::SimulatedOracle;
        let c = figure1();
        let t = fig2a();
        for (id, set) in c.iter() {
            let mut oracle = SimulatedOracle::new(set);
            let out = t.discover(&mut oracle);
            assert_eq!(out.discovered(), Some(id));
            let (q, _) = t.descend(&c, set);
            assert_eq!(out.questions, q as usize);
        }
    }

    #[test]
    fn oracle_unknown_returns_subtree_leaves() {
        use crate::discovery::{Answer, Oracle};
        struct YesThenUnknown(usize);
        impl Oracle for YesThenUnknown {
            fn answer(&mut self, _: EntityId) -> Answer {
                if self.0 == 0 {
                    Answer::Unknown
                } else {
                    self.0 -= 1;
                    Answer::Yes
                }
            }
        }
        let t = fig2a();
        // Answer yes once (root d → yes subtree {S1,S2,S3}), then shrug.
        let out = t.discover(&mut YesThenUnknown(1));
        assert_eq!(out.questions, 1);
        assert_eq!(out.candidates, vec![SetId(0), SetId(1), SetId(2)]);
        assert_eq!(out.discovered(), None);
        // Immediate shrug → every leaf survives.
        let out = t.discover(&mut YesThenUnknown(0));
        assert_eq!(out.candidates.len(), 7);
        assert_eq!(out.questions, 0);
    }

    #[test]
    fn leaf_depth_order_is_yes_first() {
        let c = figure1();
        let mut s = MostEven::new();
        let t = build_tree(&c.full_view(), &mut s).unwrap();
        let depths = t.leaf_depths();
        assert_eq!(depths.len(), 7);
        t.validate(&c.full_view()).unwrap();
    }
}
