//! Offline decision-tree construction — Algorithm 3 of the paper.
//!
//! Recursively selects an entity with the configured strategy, splits the
//! sub-collection, and recurses into both sides. Implemented with an
//! explicit work stack so collections whose optimal trees are deep (e.g.
//! nearly-disjoint sets, where the tree degenerates to a chain of `n − 1`
//! questions) cannot overflow the call stack.

use crate::entity::SetId;
use crate::error::{Result, SetDiscError};
use crate::strategy::SelectionStrategy;
use crate::subcollection::SubCollection;
use crate::tree::{DecisionTree, Node, NodeId};

/// Builds a full binary decision tree over `view` using `strategy` for
/// entity selection (Algorithm 3).
///
/// Errors with [`SetDiscError::EmptyCollection`] on an empty view and with
/// [`SetDiscError::NoInformativeEntity`] if the strategy cannot split a
/// group of two or more sets (impossible when the sets are unique, which
/// [`crate::Collection`] guarantees).
pub fn build_tree(
    view: &SubCollection<'_>,
    strategy: &mut dyn SelectionStrategy,
) -> Result<DecisionTree> {
    if view.is_empty() {
        return Err(SetDiscError::EmptyCollection);
    }
    let mut nodes: Vec<Node> = Vec::with_capacity(2 * view.len() - 1);
    // Placeholder overwritten by the frame that owns the slot.
    const PLACEHOLDER: Node = Node::Leaf {
        set: SetId(u32::MAX),
    };
    nodes.push(PLACEHOLDER);
    let mut stack: Vec<(SubCollection<'_>, NodeId)> = vec![(view.clone(), 0)];

    while let Some((sub, slot)) = stack.pop() {
        if sub.len() == 1 {
            let set = sub.first_id().expect("singleton view has a member");
            nodes[slot as usize] = Node::Leaf { set };
            continue;
        }
        let entity = strategy
            .select(&sub)
            .ok_or(SetDiscError::NoInformativeEntity { group: sub.len() })?;
        let (yes, no) = sub.partition(entity);
        if yes.is_empty() || no.is_empty() {
            // The strategy returned an uninformative entity — a strategy
            // bug, surfaced as an error rather than an infinite loop.
            return Err(SetDiscError::NoInformativeEntity { group: sub.len() });
        }
        let yes_slot = nodes.len() as NodeId;
        nodes.push(PLACEHOLDER);
        let no_slot = nodes.len() as NodeId;
        nodes.push(PLACEHOLDER);
        nodes[slot as usize] = Node::Internal {
            entity,
            yes: yes_slot,
            no: no_slot,
        };
        stack.push((yes, yes_slot));
        stack.push((no, no_slot));
    }

    let tree = DecisionTree::from_parts(nodes, 0);
    debug_assert!(tree.validate(view).is_ok());
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::Collection;
    use crate::cost::{AvgDepth, Height};
    use crate::lookahead::KLp;
    use crate::strategy::{InfoGain, MostEven};

    fn figure1() -> Collection {
        Collection::from_raw_sets(vec![
            vec![0, 1, 2, 3],
            vec![0, 3, 4],
            vec![0, 1, 2, 3, 5],
            vec![0, 1, 2, 6, 7],
            vec![0, 1, 7, 8],
            vec![0, 1, 9, 10],
            vec![0, 1, 6],
        ])
        .unwrap()
    }

    #[test]
    fn builds_valid_full_binary_tree() {
        let c = figure1();
        let v = c.full_view();
        for strategy in [
            &mut MostEven::new() as &mut dyn SelectionStrategy,
            &mut InfoGain::new(),
            &mut KLp::<AvgDepth>::new(2),
            &mut KLp::<Height>::new(3),
        ] {
            let t = build_tree(&v, strategy).unwrap();
            assert_eq!(t.n_leaves(), 7);
            assert_eq!(t.n_internal(), 6);
            t.validate(&v).unwrap();
        }
    }

    #[test]
    fn klp3_reaches_optimal_height_on_figure1() {
        // k=3 ≥ optimal height 3 → k-LP builds an optimal tree (§4.4.1).
        let c = figure1();
        let v = c.full_view();
        let mut s = KLp::<Height>::new(3);
        let t = build_tree(&v, &mut s).unwrap();
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn klp3_reaches_optimal_avg_depth_on_figure1() {
        let c = figure1();
        let v = c.full_view();
        let mut s = KLp::<AvgDepth>::new(3);
        let t = build_tree(&v, &mut s).unwrap();
        assert_eq!(t.total_depth(), 20, "AD optimum 20/7 (Lemma 3.3)");
    }

    #[test]
    fn singleton_view_is_a_leaf() {
        let c = figure1();
        let v = crate::subcollection::SubCollection::from_ids(&c, vec![SetId(2)]);
        let t = build_tree(&v, &mut MostEven::new()).unwrap();
        assert_eq!(t.n_leaves(), 1);
        assert_eq!(t.height(), 0);
        assert_eq!(t.depth_of(SetId(2)), Some(0));
    }

    #[test]
    fn empty_view_errors() {
        let c = figure1();
        let v = crate::subcollection::SubCollection::from_ids(&c, vec![]);
        assert_eq!(
            build_tree(&v, &mut MostEven::new()).err(),
            Some(SetDiscError::EmptyCollection)
        );
    }

    #[test]
    fn disjoint_sets_build_a_chain() {
        // n pairwise-disjoint singleton sets: every question eliminates one
        // set → height n−1 (the worst case discussed in §1 and §5.3.4).
        let n = 40u32;
        let c = Collection::from_raw_sets((0..n).map(|i| vec![i]).collect()).unwrap();
        let v = c.full_view();
        let t = build_tree(&v, &mut MostEven::new()).unwrap();
        assert_eq!(t.height(), n - 1);
        t.validate(&v).unwrap();
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let n = 20_000u32;
        let c = Collection::from_raw_sets((0..n).map(|i| vec![i]).collect()).unwrap();
        let v = c.full_view();
        let t = build_tree(&v, &mut MostEven::new()).unwrap();
        assert_eq!(t.n_leaves(), n as usize);
        assert_eq!(t.height(), n - 1);
    }

    #[test]
    fn tree_descend_finds_every_target() {
        let c = figure1();
        let v = c.full_view();
        let t = build_tree(&v, &mut KLp::<AvgDepth>::new(2)).unwrap();
        for (id, set) in c.iter() {
            let (_, found) = t.descend(&c, set);
            assert_eq!(found, id);
        }
    }

    #[test]
    fn power_of_two_collection_builds_perfect_tree() {
        // 8 sets pairwise distinguished by 3 "bit" entities → a perfect
        // depth-3 tree under every sensible strategy.
        let sets: Vec<Vec<u32>> = (0..8u32)
            .map(|i| {
                (0..3u32)
                    .filter(|b| i >> b & 1 == 1)
                    .map(|b| b + 1)
                    .chain([0]) // shared uninformative entity
                    .collect()
            })
            .collect();
        let c = Collection::from_raw_sets(sets).unwrap();
        let v = c.full_view();
        let t = build_tree(&v, &mut MostEven::new()).unwrap();
        assert_eq!(t.height(), 3);
        assert_eq!(t.total_depth(), 24);
        t.validate(&v).unwrap();
    }
}
