//! Greedy entity-selection strategies (paper §4.2).
//!
//! All four single-step strategies — most-even partitioning, information
//! gain, indistinguishable pairs, and the 1-step cost lower bound — provably
//! select an entity that partitions the collection most evenly (Lemma 4.3),
//! so they achieve the same `(ln n + 1)`-approximation. They are all
//! implemented faithfully to their own scoring formulas (not aliased to each
//! other), and the equivalence is asserted by property tests.
//!
//! Tie-breaking is deterministic everywhere: better score, then more even
//! partition, then smaller entity id. The paper breaks remaining ties
//! randomly; a fixed order keeps experiments reproducible and is one of the
//! tied optima either way.

use crate::cost::{imbalance, lb1, Cost, CostModel};
use crate::entity::EntityId;
use crate::subcollection::{CountScratch, EntityCount, SubCollection, WeightedEntityStats};
use crate::weights::WeightTable;
use setdisc_util::{FxHashSet, Rng};
use std::sync::Arc;

/// One selection together with the evidence behind it — what a plan cache
/// persists per decision-tree node (see `setdisc-plan`).
///
/// `bound` is the strategy's own quality measure for the pick: the `LB_k`
/// value for the lookahead families, `0` for the greedy strategies (which
/// compute no tree bound). `informative` / `evaluated` mirror
/// [`crate::lookahead::NodeStats`] when the strategy tracks pruning, and
/// are `0` otherwise.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SelectionDetail {
    /// The selected entity.
    pub entity: EntityId,
    /// The strategy's bound for this selection (scaled cost units; `0` when
    /// the strategy computes none).
    pub bound: Cost,
    /// Informative entities available at the node (`0` when untracked).
    pub informative: u32,
    /// Entities whose bound computation started (`0` when untracked).
    pub evaluated: u32,
}

/// Most ranked candidates a [`SelectionTrace`] retains verbatim; the tail
/// beyond the cap is summarized by the trace's aggregate counters.
pub const EXPLAIN_RANKED_CAP: usize = 16;

/// Why one candidate entity did or did not become the question — the
/// paper's Table-4 prune taxonomy, per candidate instead of aggregate.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CandidateOutcome {
    /// This candidate won the argmin and was selected.
    Selected,
    /// Its bound was fully computed; it lost to the selected entity.
    Evaluated,
    /// Its partition was content-identical to an earlier candidate's
    /// (membership-digest dedup) — bound skipped, outcome inherited.
    PrunedDuplicate,
    /// The ranked early exit cut it: its 1-step key already ruled out
    /// beating the incumbent bound, so lookahead never descended.
    PrunedBound,
}

impl CandidateOutcome {
    /// Stable wire name for provenance JSON.
    pub fn name(self) -> &'static str {
        match self {
            CandidateOutcome::Selected => "selected",
            CandidateOutcome::Evaluated => "evaluated",
            CandidateOutcome::PrunedDuplicate => "pruned_duplicate",
            CandidateOutcome::PrunedBound => "pruned_bound",
        }
    }
}

/// One candidate in the strategy's own ranked consideration order.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RankedCandidate {
    /// The candidate entity.
    pub entity: EntityId,
    /// Yes-side size of `partition(entity)` over the view.
    pub count: u32,
    /// Position in the strategy's ranking (0 = considered first).
    pub rank: u32,
    /// What happened to it.
    pub outcome: CandidateOutcome,
}

/// A per-question "why" record: the ranked candidates a strategy
/// considered and the Table-4 reason each non-winner was discarded.
/// Produced only on demand by [`SelectionStrategy::explain_last`] —
/// never on the selection hot path.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SelectionTrace {
    /// Candidates in rank order, truncated at [`EXPLAIN_RANKED_CAP`].
    pub ranked: Vec<RankedCandidate>,
    /// Informative candidates at the node (Table 4 `|I|`).
    pub informative: u32,
    /// Candidates whose bound computation ran.
    pub evaluated: u32,
    /// Candidates discarded as duplicate partitions.
    pub pruned_duplicate: u32,
    /// Candidates cut by the ranked early exit before evaluation.
    pub pruned_bound: u32,
    /// The selection was served from the strategy's internal memo — the
    /// ranked reconstruction reflects the memoized node's frontier.
    pub memo_hit: bool,
}

/// Chooses the entity for the next membership question on a sub-collection.
///
/// Implementations may keep internal caches; `select` takes `&mut self`.
/// `excluded` supports the §6 "don't know" extension — entities the user
/// refused to answer about must not be asked again.
pub trait SelectionStrategy {
    /// Strategy name for reports (e.g. `"k-LP(k=2,AD)"`).
    fn name(&self) -> String;

    /// Selects an entity among the informative, non-excluded entities of
    /// `view`; `None` when no such entity exists (|view| ≤ 1, or everything
    /// informative is excluded).
    fn select_excluding(
        &mut self,
        view: &SubCollection<'_>,
        excluded: &FxHashSet<EntityId>,
    ) -> Option<EntityId>;

    /// Selects with no exclusions.
    fn select(&mut self, view: &SubCollection<'_>) -> Option<EntityId> {
        self.select_excluding(view, &FxHashSet::default())
    }

    /// Like [`Self::select_excluding`], but also reports the bound and
    /// prune statistics behind the pick — the record a plan cache stores.
    /// The selected entity MUST equal what [`Self::select_excluding`] would
    /// return on the same inputs (the default implementation guarantees it
    /// by delegation; [`crate::lookahead::KLp`] overrides with its native
    /// detail and property tests pin the agreement).
    fn select_with_detail(
        &mut self,
        view: &SubCollection<'_>,
        excluded: &FxHashSet<EntityId>,
    ) -> Option<SelectionDetail> {
        self.select_excluding(view, excluded)
            .map(|entity| SelectionDetail {
                entity,
                bound: 0,
                informative: 0,
                evaluated: 0,
            })
    }

    /// Reconstructs the "why" behind the selection `detail` describes:
    /// the ranked candidate list and the prune reason per discarded
    /// candidate, for the same `(view, excluded)` the selection ran on.
    ///
    /// **Purity contract:** implementations MUST NOT change any state
    /// that selection outcomes depend on — calling this any number of
    /// times leaves future selections bit-identical (pinned by the
    /// engine's explain-purity property suite). It may cost a fresh
    /// counting pass; it only runs when a caller asked "why".
    ///
    /// The default reports what the default `select_with_detail` knows:
    /// the winner alone, with the detail's aggregate counters.
    fn explain_last(
        &mut self,
        view: &SubCollection<'_>,
        excluded: &FxHashSet<EntityId>,
        detail: &SelectionDetail,
    ) -> SelectionTrace {
        let _ = (view, excluded);
        SelectionTrace {
            ranked: vec![RankedCandidate {
                entity: detail.entity,
                count: 0,
                rank: 0,
                outcome: CandidateOutcome::Selected,
            }],
            informative: detail.informative,
            evaluated: detail.evaluated,
            pruned_duplicate: 0,
            pruned_bound: 0,
            memo_hit: false,
        }
    }
}

/// Collects informative entities of `view` minus `excluded`, id-sorted.
fn informative_filtered(
    view: &SubCollection<'_>,
    scratch: &mut CountScratch,
    excluded: &FxHashSet<EntityId>,
) -> Vec<EntityCount> {
    let mut inf = view.informative_entities(scratch);
    if !excluded.is_empty() {
        inf.retain(|ec| !excluded.contains(&ec.entity));
    }
    inf
}

/// Generic argmin over informative entities given a score function; ties are
/// broken by (score, imbalance, entity id). Works in the caller's reusable
/// `buf` (the ranking key is total, so the counting pass's first-touch order
/// never leaks into the result) — one selection allocates nothing in steady
/// state.
fn argmin_by_score<S: Ord + Copy>(
    view: &SubCollection<'_>,
    scratch: &mut CountScratch,
    buf: &mut Vec<EntityCount>,
    excluded: &FxHashSet<EntityId>,
    mut score: impl FnMut(u64, u64) -> S,
) -> Option<EntityId> {
    let n = view.len() as u64;
    if n < 2 {
        return None;
    }
    view.informative_into(scratch, buf);
    buf.iter()
        .filter(|ec| excluded.is_empty() || !excluded.contains(&ec.entity))
        .map(|ec| {
            let n1 = ec.count as u64;
            (score(n, n1), imbalance(n, n1), ec.entity)
        })
        .min()
        .map(|(_, _, e)| e)
}

/// §4.2.1 — choose the entity that most evenly partitions the collection
/// (Adler & Heeringa's `(ln n + 1)`-approximation greedy).
#[derive(Default)]
pub struct MostEven {
    scratch: CountScratch,
    buf: Vec<EntityCount>,
}

impl MostEven {
    /// New instance.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SelectionStrategy for MostEven {
    fn name(&self) -> String {
        "MostEven".into()
    }

    fn select_excluding(
        &mut self,
        view: &SubCollection<'_>,
        excluded: &FxHashSet<EntityId>,
    ) -> Option<EntityId> {
        argmin_by_score(view, &mut self.scratch, &mut self.buf, excluded, imbalance)
    }
}

/// §4.2.2 — information gain (eq. 9), the ID3/C4.5 heuristic.
///
/// Maximizing `InfoGain(C,e) = log₂|C| − (|C₁|log₂|C₁| + |C₂|log₂|C₂|)/|C|`
/// is minimizing `|C₁|log₂|C₁| + |C₂|log₂|C₂|`, computed in f64. The f64
/// score is quantized to a total order through `u64` bit tricks to keep the
/// deterministic tie-break chain intact.
#[derive(Default)]
pub struct InfoGain {
    scratch: CountScratch,
    buf: Vec<EntityCount>,
}

impl InfoGain {
    /// New instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// The information gain of splitting `n` sets into `n1` / `n - n1`.
    pub fn gain(n: u64, n1: u64) -> f64 {
        let n2 = n - n1;
        let xlx = |x: u64| {
            if x == 0 {
                0.0
            } else {
                let x = x as f64;
                x * x.log2()
            }
        };
        (n as f64).log2() - (xlx(n1) + xlx(n2)) / n as f64
    }
}

impl SelectionStrategy for InfoGain {
    fn name(&self) -> String {
        "InfoGain".into()
    }

    fn select_excluding(
        &mut self,
        view: &SubCollection<'_>,
        excluded: &FxHashSet<EntityId>,
    ) -> Option<EntityId> {
        argmin_by_score(view, &mut self.scratch, &mut self.buf, excluded, |n, n1| {
            // Minimize the split entropy term; total_cmp-compatible key.
            let n2 = n - n1;
            let xlx = |x: u64| {
                let x = x as f64;
                x * x.log2()
            };
            let score = xlx(n1) + xlx(n2);
            // Non-negative finite f64s order identically to their bit patterns.
            debug_assert!(score >= 0.0 && score.is_finite());
            score.to_bits()
        })
    }
}

/// §4.2.3 — minimize indistinguishable pairs (eq. 10), the faceted-search
/// heuristic of Basu Roy et al.
#[derive(Default)]
pub struct IndistinguishablePairs {
    scratch: CountScratch,
    buf: Vec<EntityCount>,
}

impl IndistinguishablePairs {
    /// New instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indistinguishable pairs after splitting `n` into `n1`/`n2`.
    pub fn indg(n: u64, n1: u64) -> u64 {
        let n2 = n - n1;
        (n1 * (n1 - 1) + n2 * n2.saturating_sub(1)) / 2
    }
}

impl SelectionStrategy for IndistinguishablePairs {
    fn name(&self) -> String {
        "IndistPairs".into()
    }

    fn select_excluding(
        &mut self,
        view: &SubCollection<'_>,
        excluded: &FxHashSet<EntityId>,
    ) -> Option<EntityId> {
        argmin_by_score(view, &mut self.scratch, &mut self.buf, excluded, Self::indg)
    }
}

/// §4.2.4 — the 1-step cost lower bound `LB₁` for a chosen cost metric,
/// breaking lower-bound ties by most-even partition (as the paper
/// prescribes), then by entity id.
#[derive(Default)]
pub struct Lb1<M: CostModel> {
    scratch: CountScratch,
    buf: Vec<EntityCount>,
    _metric: std::marker::PhantomData<M>,
}

impl<M: CostModel> Lb1<M> {
    /// New instance.
    pub fn new() -> Self {
        Self::default()
    }
}

impl<M: CostModel> SelectionStrategy for Lb1<M> {
    fn name(&self) -> String {
        format!("LB1({})", M::NAME)
    }

    fn select_excluding(
        &mut self,
        view: &SubCollection<'_>,
        excluded: &FxHashSet<EntityId>,
    ) -> Option<EntityId> {
        argmin_by_score(view, &mut self.scratch, &mut self.buf, excluded, |n, n1| {
            lb1::<M>(n, n1)
        })
    }
}

/// §6 — most-even partitioning of prior *mass*: choose the entity whose
/// yes-side weight is closest to half the view's weight (the weighted
/// information-gain argmax, in exact integers). With a uniform table the
/// ranking key `(|2·W₁ − W|, imbalance, id)` degenerates to
/// `(imbalance, imbalance, id)` and the strategy selects exactly what
/// [`MostEven`] does — the property suite pins this bit-identity.
pub struct WeightedMostEven {
    weights: Arc<WeightTable>,
    scratch: CountScratch,
    buf: Vec<WeightedEntityStats>,
}

impl WeightedMostEven {
    /// Strategy over the given prior (indexed by the collection's set ids).
    pub fn new(weights: Arc<WeightTable>) -> Self {
        Self {
            weights,
            scratch: CountScratch::new(),
            buf: Vec::new(),
        }
    }

    /// The prior this strategy selects under.
    pub fn weights(&self) -> &Arc<WeightTable> {
        &self.weights
    }
}

impl SelectionStrategy for WeightedMostEven {
    fn name(&self) -> String {
        format!("MostEven(w:{:016x})", self.weights.fp())
    }

    fn select_excluding(
        &mut self,
        view: &SubCollection<'_>,
        excluded: &FxHashSet<EntityId>,
    ) -> Option<EntityId> {
        let n = view.len() as u64;
        if n < 2 {
            return None;
        }
        let w = view.total_weight(&self.weights);
        view.informative_weighted(&mut self.scratch, &mut self.buf, &self.weights);
        self.buf
            .iter()
            .filter(|s| excluded.is_empty() || !excluded.contains(&s.entity))
            .map(|s| {
                let mass_imbalance = (2 * s.wsum).abs_diff(w);
                (mass_imbalance, imbalance(n, s.count as u64), s.entity)
            })
            .min()
            .map(|(_, _, e)| e)
    }
}

/// A uniformly random informative entity — a deliberately weak baseline used
/// in ablation benches to show how much structure-aware selection buys.
pub struct RandomInformative {
    scratch: CountScratch,
    rng: Rng,
}

impl RandomInformative {
    /// New instance with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        Self {
            scratch: CountScratch::new(),
            rng: Rng::new(seed),
        }
    }
}

impl SelectionStrategy for RandomInformative {
    fn name(&self) -> String {
        "Random".into()
    }

    fn select_excluding(
        &mut self,
        view: &SubCollection<'_>,
        excluded: &FxHashSet<EntityId>,
    ) -> Option<EntityId> {
        if view.len() < 2 {
            return None;
        }
        let inf = informative_filtered(view, &mut self.scratch, excluded);
        self.rng.choose(&inf).map(|ec| ec.entity)
    }
}

impl<T: SelectionStrategy + ?Sized> SelectionStrategy for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn select_excluding(
        &mut self,
        view: &SubCollection<'_>,
        excluded: &FxHashSet<EntityId>,
    ) -> Option<EntityId> {
        (**self).select_excluding(view, excluded)
    }

    fn select_with_detail(
        &mut self,
        view: &SubCollection<'_>,
        excluded: &FxHashSet<EntityId>,
    ) -> Option<SelectionDetail> {
        (**self).select_with_detail(view, excluded)
    }

    fn explain_last(
        &mut self,
        view: &SubCollection<'_>,
        excluded: &FxHashSet<EntityId>,
        detail: &SelectionDetail,
    ) -> SelectionTrace {
        (**self).explain_last(view, excluded, detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::Collection;
    use crate::cost::{AvgDepth, Height};

    fn figure1() -> Collection {
        Collection::from_raw_sets(vec![
            vec![0, 1, 2, 3],
            vec![0, 3, 4],
            vec![0, 1, 2, 3, 5],
            vec![0, 1, 2, 6, 7],
            vec![0, 1, 7, 8],
            vec![0, 1, 9, 10],
            vec![0, 1, 6],
        ])
        .unwrap()
    }

    /// In Figure 1 the most even split is 3/4, achieved by c(=2) and d(=3);
    /// the deterministic tie-break on entity id selects c.
    #[test]
    fn all_greedy_strategies_pick_most_even_entity() {
        let c = figure1();
        let v = c.full_view();
        let expected = EntityId(2);
        assert_eq!(MostEven::new().select(&v), Some(expected));
        assert_eq!(InfoGain::new().select(&v), Some(expected));
        assert_eq!(IndistinguishablePairs::new().select(&v), Some(expected));
        assert_eq!(Lb1::<AvgDepth>::new().select(&v), Some(expected));
        assert_eq!(Lb1::<Height>::new().select(&v), Some(expected));
    }

    #[test]
    fn singleton_and_empty_views_yield_none() {
        let c = figure1();
        let v1 = crate::subcollection::SubCollection::from_ids(&c, vec![crate::entity::SetId(0)]);
        assert_eq!(MostEven::new().select(&v1), None);
        let v0 = crate::subcollection::SubCollection::from_ids(&c, vec![]);
        assert_eq!(InfoGain::new().select(&v0), None);
    }

    #[test]
    fn exclusion_forces_second_best() {
        let c = figure1();
        let v = c.full_view();
        let mut excluded = FxHashSet::default();
        excluded.insert(EntityId(2));
        // With c excluded, d (also 3/4) is the next most-even entity.
        assert_eq!(
            MostEven::new().select_excluding(&v, &excluded),
            Some(EntityId(3))
        );
        excluded.insert(EntityId(3));
        let third = MostEven::new().select_excluding(&v, &excluded).unwrap();
        assert!(third != EntityId(2) && third != EntityId(3));
    }

    #[test]
    fn excluding_everything_informative_yields_none() {
        let c = Collection::from_raw_sets(vec![vec![0, 1], vec![0, 2]]).unwrap();
        let v = c.full_view();
        let mut excluded = FxHashSet::default();
        excluded.insert(EntityId(1));
        excluded.insert(EntityId(2));
        assert_eq!(MostEven::new().select_excluding(&v, &excluded), None);
    }

    #[test]
    fn info_gain_formula() {
        // Even split of 4: gain = log2(4) - (2*2*1)/4... xlx(2)=2 →
        // gain = 2 - (2+2)/4 = 1.0 (one full bit).
        assert!((InfoGain::gain(4, 2) - 1.0).abs() < 1e-12);
        // Degenerate "split" 4/0 would carry zero gain; informative
        // entities never produce it but the formula is total.
        assert!(InfoGain::gain(4, 4).abs() < 1e-12);
    }

    #[test]
    fn indg_formula() {
        // 7 sets split 3/4 → (3·2 + 4·3)/2 = 9 indistinguishable pairs.
        assert_eq!(IndistinguishablePairs::indg(7, 3), 9);
        // 2 sets split 1/1 → 0: fully distinguished.
        assert_eq!(IndistinguishablePairs::indg(2, 1), 0);
    }

    #[test]
    fn random_strategy_selects_informative() {
        let c = figure1();
        let v = c.full_view();
        let mut r = RandomInformative::new(7);
        for _ in 0..50 {
            let e = r.select(&v).unwrap();
            // Entity a=0 is uninformative and must never be chosen.
            assert_ne!(e, EntityId(0));
        }
    }

    /// Lemma 4.3 on a batch of structured collections: every strategy's pick
    /// achieves the minimal imbalance.
    #[test]
    fn lemma_4_3_equivalence_structured() {
        let collections = vec![
            figure1(),
            Collection::from_raw_sets(vec![
                vec![1, 2, 3],
                vec![2, 3, 4],
                vec![3, 4, 5],
                vec![4, 5, 6],
                vec![5, 6, 7],
            ])
            .unwrap(),
            Collection::from_raw_sets(vec![vec![1], vec![2], vec![3], vec![4]]).unwrap(),
        ];
        for c in &collections {
            let v = c.full_view();
            let n = v.len() as u64;
            let mut scratch = CountScratch::new();
            let inf = v.informative_entities(&mut scratch);
            let best_imb = inf
                .iter()
                .map(|ec| imbalance(n, ec.count as u64))
                .min()
                .unwrap();
            let imb_of = |e: EntityId| {
                let ec = inf.iter().find(|ec| ec.entity == e).unwrap();
                imbalance(n, ec.count as u64)
            };
            assert_eq!(imb_of(MostEven::new().select(&v).unwrap()), best_imb);
            assert_eq!(imb_of(InfoGain::new().select(&v).unwrap()), best_imb);
            assert_eq!(
                imb_of(IndistinguishablePairs::new().select(&v).unwrap()),
                best_imb
            );
            assert_eq!(imb_of(Lb1::<AvgDepth>::new().select(&v).unwrap()), best_imb);
        }
    }

    #[test]
    fn weighted_most_even_uniform_matches_most_even() {
        let c = figure1();
        let weights = Arc::new(WeightTable::uniform(7));
        let views = [
            c.full_view(),
            crate::subcollection::SubCollection::from_ids(
                &c,
                vec![
                    crate::entity::SetId(0),
                    crate::entity::SetId(3),
                    crate::entity::SetId(5),
                    crate::entity::SetId(6),
                ],
            ),
        ];
        for v in &views {
            let mut excluded = FxHashSet::default();
            loop {
                let plain = MostEven::new().select_excluding(v, &excluded);
                let weighted =
                    WeightedMostEven::new(Arc::clone(&weights)).select_excluding(v, &excluded);
                assert_eq!(plain, weighted);
                match plain {
                    Some(e) => excluded.insert(e),
                    None => break,
                };
            }
        }
    }

    #[test]
    fn weighted_most_even_balances_mass_not_cardinality() {
        // S2 = {a,d,e} carries 9/15 of the mass; e(=4) splits mass 9 vs 6
        // (imbalance 3) while c's 3/4 cardinality split leaves 11 vs 4
        // (imbalance 7) — the weighted pick must move toward the hot set.
        let c = figure1();
        let v = c.full_view();
        let weights = Arc::new(WeightTable::new(&[1, 9, 1, 1, 1, 1, 1]).unwrap());
        let pick = WeightedMostEven::new(Arc::clone(&weights))
            .select(&v)
            .unwrap();
        let (yes, no) = v.partition(pick);
        let w1 = yes.total_weight(&weights);
        let w2 = no.total_weight(&weights);
        assert!(w1.abs_diff(w2) <= 3, "pick {pick} splits mass {w1}/{w2}");
        assert_ne!(pick, MostEven::new().select(&v).unwrap());
    }

    #[test]
    fn weighted_most_even_respects_exclusions() {
        let c = figure1();
        let v = c.full_view();
        let weights = Arc::new(WeightTable::new(&[1, 9, 1, 1, 1, 1, 1]).unwrap());
        let mut s = WeightedMostEven::new(weights);
        let first = s.select(&v).unwrap();
        let mut excluded = FxHashSet::default();
        excluded.insert(first);
        let second = s.select_excluding(&v, &excluded).unwrap();
        assert_ne!(first, second);
        assert!(s.name().starts_with("MostEven(w:"));
    }

    #[test]
    fn boxed_strategy_is_a_strategy() {
        let c = figure1();
        let v = c.full_view();
        let mut boxed: Box<dyn SelectionStrategy> = Box::new(MostEven::new());
        assert_eq!(boxed.select(&v), Some(EntityId(2)));
        assert_eq!(boxed.name(), "MostEven");
    }
}
