//! Error types for the set-discovery crate.

use crate::entity::{EntityId, SetId};

/// Errors surfaced by collection construction, tree building and discovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SetDiscError {
    /// A collection must contain at least one set.
    EmptyCollection,
    /// An operation referenced a set id outside the collection.
    UnknownSet(SetId),
    /// An operation referenced an entity id outside the universe.
    UnknownEntity(EntityId),
    /// Tree construction needed to split a group of distinct sets but found
    /// no informative entity — possible only if the sets are not unique.
    NoInformativeEntity {
        /// Size of the indistinguishable group.
        group: usize,
    },
    /// The user's answers are mutually inconsistent with every candidate set
    /// (only possible with a noisy oracle).
    ContradictoryAnswers {
        /// Number of questions answered before the contradiction appeared.
        after_questions: usize,
    },
    /// Backtracking recovery exhausted its retry budget.
    RecoveryExhausted {
        /// Retries attempted.
        retries: usize,
    },
    /// A tree failed structural validation.
    InvalidTree(String),
}

impl std::fmt::Display for SetDiscError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptyCollection => write!(f, "collection contains no sets"),
            Self::UnknownSet(id) => write!(f, "set id {} out of range", id.0),
            Self::UnknownEntity(id) => write!(f, "entity id {} out of range", id.0),
            Self::NoInformativeEntity { group } => write!(
                f,
                "no informative entity to split a group of {group} sets (duplicate sets?)"
            ),
            Self::ContradictoryAnswers { after_questions } => write!(
                f,
                "answers contradict every candidate set after {after_questions} questions"
            ),
            Self::RecoveryExhausted { retries } => {
                write!(f, "backtracking recovery failed after {retries} retries")
            }
            Self::InvalidTree(msg) => write!(f, "invalid decision tree: {msg}"),
        }
    }
}

impl std::error::Error for SetDiscError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SetDiscError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            SetDiscError::EmptyCollection.to_string(),
            "collection contains no sets"
        );
        assert!(SetDiscError::UnknownSet(SetId(3)).to_string().contains('3'));
        assert!(SetDiscError::NoInformativeEntity { group: 2 }
            .to_string()
            .contains("duplicate"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&SetDiscError::EmptyCollection);
    }
}
