//! Non-uniform priors over candidate sets (§6), in exact integer arithmetic.
//!
//! When sets are not equally likely to be the target, the quantity to
//! minimize is the *expected* number of questions `Σᵢ pᵢ·depth(Sᵢ)`. As with
//! the unweighted AD metric (see [`crate::cost`]), every comparison the
//! pruning rule makes must be exact, so priors are integer weights: the
//! caller supplies positive integers (relative odds), construction divides
//! out their GCD, and the weighted total depth `WTD(C) = Σᵢ wᵢ·depth(Sᵢ)` is
//! tracked as a plain `u64`. With all weights equal the math reduces — bit
//! for bit — to the unweighted total-depth formulas: `W = n` makes every
//! weighted expression below collapse to its [`crate::cost::AvgDepth`]
//! counterpart, which is what the `weighted_lossless` property suite pins.
//!
//! The weighted lower bound generalizes `LB_AD0`: with every `wᵢ ≥ 1`,
//!
//! ```text
//! WTD(C) = Σ wᵢ·dᵢ = Σ (wᵢ − 1)·dᵢ + Σ dᵢ ≥ (W − n)·1 + lb0(n)
//! ```
//!
//! since every leaf of a collection with `n ≥ 2` sets has depth ≥ 1 and the
//! unweighted total depth is at least `lb0(n) = ⌈n·log₂n⌉`. Hence
//! [`wlb0`]`(W, n) = W + lb0(n) − n`. Combining children mirrors eq. (6):
//! every unit of weight gains one level below the node, so
//! `combine = l₁ + l₂ + W`, and the upper-limit recurrences (eqs. 11/13)
//! carry over with `W` in place of `n`.

use crate::entity::SetId;
use setdisc_util::FxHasher;
use std::hash::Hasher as _;
use std::sync::Arc;

use crate::cost::{Cost, UNBOUNDED};

/// An integer prior over the sets of one collection, aligned by [`SetId`].
///
/// Weights are positive integers normalized by their GCD at construction, so
/// two proportional priors (e.g. `[2,4,2]` and `[1,2,1]`) are the same table
/// with the same fingerprint. A table whose normalized weights are all equal
/// is [`Self::is_uniform`] — callers should prefer the unweighted path then,
/// which this crate's property tests prove bit-identical.
#[derive(Clone, Debug)]
pub struct WeightTable {
    weights: Arc<[u64]>,
    total: u64,
    fp: u64,
}

impl WeightTable {
    /// Builds a table from raw positive integer weights (one per set, by
    /// id). Rejects empty input, zero weights, and totals overflowing
    /// `u64` — the caller-facing validation for wire-supplied priors.
    pub fn new(raw: &[u64]) -> Result<Self, String> {
        if raw.is_empty() {
            return Err("prior must cover at least one set".into());
        }
        if let Some(i) = raw.iter().position(|&w| w == 0) {
            return Err(format!("prior weight for set {i} is zero (must be >= 1)"));
        }
        let mut g = raw[0];
        for &w in &raw[1..] {
            g = gcd(g, w);
            if g == 1 {
                break;
            }
        }
        let weights: Vec<u64> = raw.iter().map(|&w| w / g).collect();
        let mut total: u64 = 0;
        for &w in &weights {
            total = total
                .checked_add(w)
                .ok_or_else(|| "prior weights sum past u64::MAX".to_string())?;
        }
        let mut h = FxHasher::default();
        h.write_u64(weights.len() as u64);
        for &w in &weights {
            h.write_u64(w);
        }
        // `| 1` keeps a real table's fingerprint from ever colliding with
        // the reserved "unweighted" marker 0 used by plan-cache keys.
        let fp = h.finish() | 1;
        Ok(Self {
            weights: weights.into(),
            total,
            fp,
        })
    }

    /// The uniform table over `len` sets (all weights 1). Equivalent to the
    /// unweighted path; exists so tests can force the weighted code down to
    /// the last branch and compare.
    pub fn uniform(len: usize) -> Self {
        Self::new(&vec![1; len]).expect("uniform table is valid")
    }

    /// True when every normalized weight is equal — the weighted math then
    /// reduces exactly to the unweighted formulas.
    pub fn is_uniform(&self) -> bool {
        self.weights.iter().all(|&w| w == self.weights[0])
    }

    /// Number of sets covered.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when empty (unreachable through the constructors).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Normalized weight of one set. Panics on out-of-range ids — the table
    /// must cover the whole collection.
    #[inline]
    pub fn weight(&self, id: SetId) -> u64 {
        self.weights[id.0 as usize]
    }

    /// Total normalized weight of the whole table.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Summed weight of a view's candidate ids.
    pub fn sum(&self, ids: &[SetId]) -> u64 {
        ids.iter().map(|&id| self.weight(id)).sum()
    }

    /// Content fingerprint of the normalized table — always odd, so it never
    /// equals the reserved unweighted marker `0`. Plan caches fold this into
    /// their strategy keys.
    pub fn fp(&self) -> u64 {
        self.fp
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Weighted `LB₀`: least possible weighted total depth of a (sub)collection
/// with summed weight `w` over `n` sets, given the unweighted `lb0(n)`.
#[inline]
pub fn wlb0(w: u64, n: u64, lb0_n: Cost) -> Cost {
    if n <= 1 {
        0
    } else {
        // Valid because every weight is ≥ 1 and every leaf depth is ≥ 1
        // when n ≥ 2; see the module docs. w ≥ n by construction.
        w + lb0_n - n
    }
}

/// Weighted node combine (eq. 6 with weight in place of cardinality): every
/// unit of weight gains one level below the node.
#[inline]
pub fn combine_w(w: u64, l1: Cost, l2: Cost) -> Cost {
    l1 + l2 + w
}

/// Weighted exclusive upper limit for the first child (eq. 11 with `W`).
#[inline]
pub fn ul_first_w(aflv: Cost, w: u64, other_wlb0: Cost) -> Option<Cost> {
    if aflv == UNBOUNDED {
        return Some(UNBOUNDED);
    }
    let ul = aflv.checked_sub(w)?.checked_sub(other_wlb0)?;
    (ul > 0).then_some(ul)
}

/// Weighted exclusive upper limit for the second child (eq. 13 with `W`).
#[inline]
pub fn ul_second_w(aflv: Cost, w: u64, l1: Cost) -> Option<Cost> {
    if aflv == UNBOUNDED {
        return Some(UNBOUNDED);
    }
    let ul = aflv.checked_sub(w)?.checked_sub(l1)?;
    (ul > 0).then_some(ul)
}

/// Expected number of questions of `tree` under `weights` — the weighted
/// generalization of Definition 3.2, reported as a float
/// (`Σ wᵢ·depthᵢ / W`).
pub fn expected_depth(tree: &crate::tree::DecisionTree, weights: &WeightTable) -> f64 {
    let mut total: u64 = 0;
    let mut stack = vec![(tree.root(), 0u32)];
    while let Some((id, depth)) = stack.pop() {
        match *tree.node(id) {
            crate::tree::Node::Leaf { set } => total += weights.weight(set) * depth as u64,
            crate::tree::Node::Internal { yes, no, .. } => {
                stack.push((yes, depth + 1));
                stack.push((no, depth + 1));
            }
        }
    }
    total as f64 / weights.total() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{AvgDepth, CostModel};

    #[test]
    fn construction_validates_and_normalizes() {
        assert!(WeightTable::new(&[]).is_err());
        assert!(WeightTable::new(&[1, 0, 2]).is_err());
        // Equal maximal weights normalize to [1, 1]; coprime ones overflow.
        assert!(WeightTable::new(&[u64::MAX, u64::MAX]).is_ok());
        assert!(WeightTable::new(&[u64::MAX, u64::MAX - 1]).is_err());
        let t = WeightTable::new(&[2, 4, 6]).unwrap();
        assert_eq!(
            (t.weight(SetId(0)), t.weight(SetId(1)), t.weight(SetId(2))),
            (1, 2, 3)
        );
        assert_eq!(t.total(), 6);
        assert!(!t.is_uniform());
    }

    #[test]
    fn proportional_tables_share_a_fingerprint() {
        let a = WeightTable::new(&[2, 4, 2]).unwrap();
        let b = WeightTable::new(&[1, 2, 1]).unwrap();
        let c = WeightTable::new(&[1, 3, 1]).unwrap();
        assert_eq!(a.fp(), b.fp());
        assert_ne!(a.fp(), c.fp());
    }

    #[test]
    fn fingerprint_never_zero() {
        for raw in [vec![1u64], vec![1, 1, 1], vec![7, 3], vec![1000, 1]] {
            let t = WeightTable::new(&raw).unwrap();
            assert_ne!(t.fp(), 0);
            assert_eq!(t.fp() & 1, 1, "fingerprints are forced odd");
        }
    }

    #[test]
    fn uniform_detection_and_sum() {
        let t = WeightTable::uniform(5);
        assert!(t.is_uniform());
        assert_eq!(t.total(), 5);
        // GCD normalization makes any constant table uniform.
        assert!(WeightTable::new(&[3, 3, 3]).unwrap().is_uniform());
        let skew = WeightTable::new(&[5, 1, 1]).unwrap();
        assert_eq!(skew.sum(&[SetId(0), SetId(2)]), 6);
    }

    #[test]
    fn uniform_weights_reduce_to_unweighted_formulas() {
        // With w ≡ 1 the view weight equals its cardinality, so every
        // weighted expression must equal its AvgDepth counterpart.
        for n in 1u64..200 {
            assert_eq!(wlb0(n, n, AvgDepth::lb0(n)), AvgDepth::lb0(n), "n={n}");
        }
        for (n, l1, l2) in [(7u64, 5u64, 8u64), (2, 0, 0), (10, 3, 17)] {
            assert_eq!(combine_w(n, l1, l2), AvgDepth::combine(n, l1, l2));
        }
        for (aflv, n, x) in [
            (20u64, 7u64, 8u64),
            (15, 7, 8),
            (10, 7, 8),
            (UNBOUNDED, 7, 8),
        ] {
            assert_eq!(ul_first_w(aflv, n, x), AvgDepth::ul_first(aflv, n, x));
            assert_eq!(ul_second_w(aflv, n, x), AvgDepth::ul_second(aflv, n, x));
        }
    }

    #[test]
    fn wlb0_is_a_lower_bound_on_balanced_trees() {
        // Exhaustive check on small n: for any depth assignment realizable
        // by a binary tree (Kraft equality), Σ wᵢdᵢ ≥ wlb0. Spot-check the
        // two-leaf case across skews: depths are (1,1), so WTD = W.
        for w1 in 1u64..20 {
            let t = WeightTable::new(&[w1, 1]).unwrap();
            let w = t.total();
            assert!(w <= wlb0(w, 2, AvgDepth::lb0(2)).max(w));
            assert_eq!(wlb0(w, 2, AvgDepth::lb0(2)), w, "lb0(2)=2 cancels n=2");
        }
        // Singleton and empty views cost nothing.
        assert_eq!(wlb0(17, 1, 0), 0);
        assert_eq!(wlb0(0, 0, 0), 0);
    }

    #[test]
    fn expected_depth_matches_avg_depth_under_uniform() {
        let c = crate::collection::Collection::from_raw_sets(vec![
            vec![0, 1, 2, 3],
            vec![0, 3, 4],
            vec![0, 1, 2, 3, 5],
            vec![0, 1, 2, 6, 7],
            vec![0, 1, 7, 8],
            vec![0, 1, 9, 10],
            vec![0, 1, 6],
        ])
        .unwrap();
        let tree =
            crate::builder::build_tree(&c.full_view(), &mut crate::strategy::MostEven::new())
                .unwrap();
        let t = WeightTable::uniform(7);
        assert!((expected_depth(&tree, &t) - tree.avg_depth()).abs() < 1e-9);
    }
}
