//! Collections of unique sets with an inverted entity index.
//!
//! A [`Collection`] owns the sets and two indexes the algorithms rely on:
//!
//! * `sets[set_id]` — the sorted entity list of each set, and
//! * `inverted[entity_id]` — the sorted list of sets containing each entity.
//!
//! Two derived indexes are built once and shared by every view/session over
//! the collection: the [`EntityPostings`] bitmap form of the inverted index
//! (frequent entities get a dense `SetId` bitmap so partitioning is
//! word-parallel — see [`crate::bitset`]) and a per-set [`Fingerprint`]
//! table so hot paths sum content digests by lookup instead of rehashing
//! ids.
//!
//! The paper assumes sets are unique (§3); [`CollectionBuilder`] enforces
//! this by construction and reports how many duplicates it dropped, so noisy
//! loaders (web tables) can surface the statistic.

use crate::bitset::EntityPostings;
use crate::entity::{EntityId, SetId};
use crate::error::{Result, SetDiscError};
use crate::set::EntitySet;
use crate::subcollection::SubCollection;
use setdisc_util::{Fingerprint, FxHashSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone token distinguishing collection instances, used by lookahead
/// caches to detect reuse of a strategy across different collections.
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

/// An immutable collection of unique entity sets.
pub struct Collection {
    sets: Vec<EntitySet>,
    inverted: Vec<Vec<SetId>>,
    postings: EntityPostings,
    set_fps: Vec<Fingerprint>,
    set_sizes: Vec<u32>,
    occurring: Vec<EntityId>,
    universe: u32,
    distinct: usize,
    token: u64,
}

impl Collection {
    /// Builds a collection from pre-built sets, deduplicating and dropping
    /// empty sets. Fails on an empty result.
    pub fn new(sets: Vec<EntitySet>) -> Result<Self> {
        let built = CollectionBuilder::from_sets(sets).build()?;
        Ok(built.collection)
    }

    /// Convenience: builds from raw `u32` element lists.
    pub fn from_raw_sets(raw: Vec<Vec<u32>>) -> Result<Self> {
        Self::new(raw.into_iter().map(EntitySet::from_raw).collect())
    }

    /// Number of sets `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when the collection is empty (unreachable through constructors).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Universe size `m` (one past the largest entity id present).
    #[inline]
    pub fn universe(&self) -> u32 {
        self.universe
    }

    /// Number of distinct entities that actually occur in some set.
    /// Computed once at build time (it sits inside sweep loops that call it
    /// per configuration).
    #[inline]
    pub fn distinct_entities(&self) -> usize {
        self.distinct
    }

    /// The set with the given id. Panics if out of range.
    #[inline]
    pub fn set(&self, id: SetId) -> &EntitySet {
        &self.sets[id.0 as usize]
    }

    /// The set with the given id, or an error.
    pub fn try_set(&self, id: SetId) -> Result<&EntitySet> {
        self.sets
            .get(id.0 as usize)
            .ok_or(SetDiscError::UnknownSet(id))
    }

    /// Iterates `(id, set)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SetId, &EntitySet)> {
        self.sets
            .iter()
            .enumerate()
            .map(|(i, s)| (SetId(i as u32), s))
    }

    /// Sorted ids of the sets containing entity `e` (empty if none).
    #[inline]
    pub fn sets_containing(&self, e: EntityId) -> &[SetId] {
        self.inverted.get(e.0 as usize).map_or(&[], Vec::as_slice)
    }

    /// The bitmap form of the inverted index (dense bitmaps for frequent
    /// entities), built once at construction and shared by every view.
    #[inline]
    pub fn postings(&self) -> &EntityPostings {
        &self.postings
    }

    /// The content digest of set id `id` as a member of a view — a table
    /// lookup of [`crate::subcollection::fp_of_set`]'s value, so hot loops
    /// never rehash ids. Panics if out of range.
    #[inline]
    pub fn set_fp(&self, id: SetId) -> Fingerprint {
        self.set_fps[id.0 as usize]
    }

    /// Size of set `id` from a flat table (no per-set pointer chase —
    /// views maintain their element totals incrementally through splits).
    #[inline]
    pub fn set_size(&self, id: SetId) -> u32 {
        self.set_sizes[id.0 as usize]
    }

    /// The entities occurring in at least one set, id-sorted — the sweep
    /// domain of postings-driven counting.
    #[inline]
    pub fn occurring_entities(&self) -> &[EntityId] {
        &self.occurring
    }

    /// Words per [`crate::bitset::IdBitmap`] over this collection's id
    /// space.
    #[inline]
    pub fn bitmap_words(&self) -> usize {
        crate::bitset::IdBitmap::words_for(self.sets.len())
    }

    /// A view over the whole collection.
    pub fn full_view(&self) -> SubCollection<'_> {
        SubCollection::full(self)
    }

    /// A view over the sets that are supersets of `initial` — the candidate
    /// sub-collection of Algorithm 2, lines 2–4.
    pub fn supersets_of(&self, initial: &[EntityId]) -> SubCollection<'_> {
        if initial.is_empty() {
            return self.full_view();
        }
        // Intersect the (sorted) inverted lists, rarest entity first.
        let mut lists: Vec<&[SetId]> = initial.iter().map(|&e| self.sets_containing(e)).collect();
        lists.sort_by_key(|l| l.len());
        let mut acc: Vec<SetId> = lists[0].to_vec();
        for list in &lists[1..] {
            if acc.is_empty() {
                break;
            }
            acc = intersect_sorted(&acc, list);
        }
        SubCollection::from_ids(self, acc)
    }

    /// Mean set size.
    pub fn avg_set_size(&self) -> f64 {
        if self.sets.is_empty() {
            return 0.0;
        }
        self.sets.iter().map(EntitySet::len).sum::<usize>() as f64 / self.sets.len() as f64
    }

    /// Instance token (from the private `NEXT_TOKEN` counter); stable for the lifetime of this
    /// collection, unique across collections within a process.
    #[inline]
    pub fn token(&self) -> u64 {
        self.token
    }
}

impl setdisc_util::mem::HeapSize for Collection {
    fn heap_bytes(&self) -> usize {
        use setdisc_util::mem::vec_bytes;
        self.sets.heap_bytes()
            + self.inverted.capacity() * std::mem::size_of::<Vec<SetId>>()
            + self.inverted.iter().map(vec_bytes).sum::<usize>()
            + self.postings.heap_bytes()
            + vec_bytes(&self.set_fps)
            + vec_bytes(&self.set_sizes)
            + vec_bytes(&self.occurring)
    }
}

impl std::fmt::Debug for Collection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Full set contents for small collections (proptest shrink output),
        // summary statistics beyond that.
        if self.len() <= 16 {
            f.debug_list().entries(self.sets.iter()).finish()
        } else {
            write!(
                f,
                "Collection({} sets, {} distinct entities)",
                self.len(),
                self.distinct_entities()
            )
        }
    }
}

/// Intersection of two sorted `SetId` slices.
fn intersect_sorted(a: &[SetId], b: &[SetId]) -> Vec<SetId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Incremental builder enforcing the paper's uniqueness assumption.
///
/// Duplicate detection is keyed on each set's 128-bit content
/// `(fingerprint, len)` digest rather than the set itself, so pushing a set
/// never clones it. Two *distinct* sets sharing a digest would be wrongly
/// merged, but the collision probability is ≈ `n²/2¹²⁸` over `n` pushed
/// sets (see [`setdisc_util::hash`]) — negligible against any realizable
/// collection.
#[derive(Default)]
pub struct CollectionBuilder {
    sets: Vec<EntitySet>,
    seen: FxHashSet<(Fingerprint, u32)>,
    duplicates_dropped: usize,
    empties_dropped: usize,
}

/// Result of [`CollectionBuilder::build`]: the collection plus cleaning
/// statistics (mirroring the dataset-cleaning counts reported in §5.2).
pub struct BuiltCollection {
    /// The deduplicated collection.
    pub collection: Collection,
    /// Duplicate sets dropped during building.
    pub duplicates_dropped: usize,
    /// Empty sets dropped during building.
    pub empties_dropped: usize,
}

impl CollectionBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder seeded with `sets`.
    pub fn from_sets(sets: Vec<EntitySet>) -> Self {
        let mut b = Self::new();
        for s in sets {
            b.push(s);
        }
        b
    }

    /// Adds one set; drops it if empty or already present.
    pub fn push(&mut self, set: EntitySet) -> &mut Self {
        if set.is_empty() {
            self.empties_dropped += 1;
        } else if !self.seen.insert((set.fingerprint(), set.len() as u32)) {
            self.duplicates_dropped += 1;
        } else {
            self.sets.push(set);
        }
        self
    }

    /// Number of (unique, non-empty) sets accumulated so far.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// True when no set has been kept yet.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Finalizes into a [`Collection`], computing the inverted index.
    pub fn build(self) -> Result<BuiltCollection> {
        if self.sets.is_empty() {
            return Err(SetDiscError::EmptyCollection);
        }
        let universe = self
            .sets
            .iter()
            .flat_map(|s| s.iter())
            .map(|e| e.0 + 1)
            .max()
            .unwrap_or(0);
        let mut inverted: Vec<Vec<SetId>> = vec![Vec::new(); universe as usize];
        for (i, set) in self.sets.iter().enumerate() {
            for e in set.iter() {
                inverted[e.0 as usize].push(SetId(i as u32));
            }
        }
        // Set ids were appended in increasing order, so lists are sorted.
        let occurring: Vec<EntityId> = inverted
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.is_empty())
            .map(|(e, _)| EntityId(e as u32))
            .collect();
        let distinct = occurring.len();
        let postings = EntityPostings::build(&inverted, self.sets.len());
        let set_fps: Vec<Fingerprint> = (0..self.sets.len() as u32)
            .map(|i| crate::subcollection::fp_of_set(SetId(i)))
            .collect();
        let set_sizes: Vec<u32> = self.sets.iter().map(|s| s.len() as u32).collect();
        Ok(BuiltCollection {
            collection: Collection {
                sets: self.sets,
                inverted,
                postings,
                set_fps,
                set_sizes,
                occurring,
                universe,
                distinct,
                token: NEXT_TOKEN.fetch_add(1, Ordering::Relaxed),
            },
            duplicates_dropped: self.duplicates_dropped,
            empties_dropped: self.empties_dropped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The seven sets from Figure 1 (entities a..k ↦ 0..10).
    pub(crate) fn figure1() -> Collection {
        Collection::from_raw_sets(vec![
            vec![0, 1, 2, 3],
            vec![0, 3, 4],
            vec![0, 1, 2, 3, 5],
            vec![0, 1, 2, 6, 7],
            vec![0, 1, 7, 8],
            vec![0, 1, 9, 10],
            vec![0, 1, 6],
        ])
        .unwrap()
    }

    #[test]
    fn builds_with_inverted_index() {
        let c = figure1();
        assert_eq!(c.len(), 7);
        assert_eq!(c.universe(), 11);
        // Entity a=0 is in all sets; d=3 in S1,S2,S3.
        assert_eq!(c.sets_containing(EntityId(0)).len(), 7);
        assert_eq!(
            c.sets_containing(EntityId(3)),
            &[SetId(0), SetId(1), SetId(2)]
        );
        assert!(c.sets_containing(EntityId(99)).is_empty());
    }

    #[test]
    fn distinct_entities_counts_occupied_ids() {
        let c = Collection::from_raw_sets(vec![vec![0, 5], vec![5, 9]]).unwrap();
        assert_eq!(c.universe(), 10);
        assert_eq!(c.distinct_entities(), 3);
    }

    #[test]
    fn dedup_and_empty_drop() {
        let mut b = CollectionBuilder::new();
        b.push(EntitySet::from_raw([1, 2]));
        b.push(EntitySet::from_raw([2, 1])); // duplicate after sorting
        b.push(EntitySet::from_raw([]));
        b.push(EntitySet::from_raw([3]));
        let built = b.build().unwrap();
        assert_eq!(built.collection.len(), 2);
        assert_eq!(built.duplicates_dropped, 1);
        assert_eq!(built.empties_dropped, 1);
    }

    #[test]
    fn empty_collection_is_an_error() {
        assert_eq!(
            CollectionBuilder::new().build().err(),
            Some(SetDiscError::EmptyCollection)
        );
        assert!(Collection::from_raw_sets(vec![]).is_err());
    }

    #[test]
    fn supersets_of_initial_examples() {
        let c = figure1();
        // {b, c} = {1, 2} is contained in S1, S3, S4.
        let v = c.supersets_of(&[EntityId(1), EntityId(2)]);
        assert_eq!(v.ids(), &[SetId(0), SetId(2), SetId(3)]);
        // {d} = {3} → S1, S2, S3.
        let v = c.supersets_of(&[EntityId(3)]);
        assert_eq!(v.ids(), &[SetId(0), SetId(1), SetId(2)]);
        // Empty initial set → everything (Algorithm 2 degenerate case).
        assert_eq!(c.supersets_of(&[]).len(), 7);
        // Unsatisfiable example.
        assert!(c.supersets_of(&[EntityId(4), EntityId(10)]).is_empty());
        // Unknown entity → no supersets.
        assert!(c.supersets_of(&[EntityId(1000)]).is_empty());
    }

    #[test]
    fn tokens_are_unique_per_collection() {
        let a = figure1();
        let b = figure1();
        assert_ne!(a.token(), b.token());
        assert_eq!(a.token(), a.token());
    }

    #[test]
    fn derived_indexes_match_inverted_lists() {
        let c = figure1();
        // 7 sets → one bitmap word → every occurring entity is dense.
        assert_eq!(c.bitmap_words(), 1);
        for e in 0..c.universe() {
            let e = EntityId(e);
            let list = c.sets_containing(e);
            match c.postings().dense(e) {
                Some(bm) => assert_eq!(bm.iter().collect::<Vec<_>>(), list),
                None => assert!(list.is_empty()),
            }
        }
        assert_eq!(
            c.occurring_entities(),
            (0..11).map(EntityId).collect::<Vec<_>>()
        );
        for (id, _) in c.iter() {
            assert_eq!(c.set_fp(id), crate::subcollection::fp_of_set(id));
        }
    }

    #[test]
    fn try_set_bounds() {
        let c = figure1();
        assert!(c.try_set(SetId(6)).is_ok());
        assert_eq!(
            c.try_set(SetId(7)).err(),
            Some(SetDiscError::UnknownSet(SetId(7)))
        );
    }

    #[test]
    fn heap_accounting_is_deterministic_and_covers_the_elements() {
        use setdisc_util::mem::HeapSize as _;
        let a = figure1();
        let b = figure1();
        assert_eq!(
            a.heap_bytes(),
            b.heap_bytes(),
            "identical builds account identically"
        );
        // Every element is stored once in `sets` and once in `inverted`,
        // 4 bytes each — the accounted total must cover at least that.
        let elems: usize = a.iter().map(|(_, s)| s.len()).sum();
        assert!(a.heap_bytes() >= 2 * 4 * elems, "{}", a.heap_bytes());
    }

    #[test]
    fn avg_set_size() {
        let c = Collection::from_raw_sets(vec![vec![1], vec![1, 2, 3]]).unwrap();
        assert!((c.avg_set_size() - 2.0).abs() < 1e-12);
    }
}
