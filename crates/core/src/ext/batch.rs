//! Multiple-choice questions (§6 "multiple-choice examples").
//!
//! Instead of one entity per interaction, show the user a small batch of
//! `b` entities and ask which of them belong to the target set. A batch of
//! `b` entities partitions the candidates into up to `2ᵇ` answer-signature
//! cells, so one interaction can carry up to `b` bits.
//!
//! Exhaustively optimizing the batch squares the already huge search space
//! (§6 notes this), so selection is greedy — each added entity maximizes the
//! number of non-empty signature cells, breaking ties by the most balanced
//! cell-size distribution (minimum sum of squared cell sizes), which is the
//! natural generalization of most-even partitioning.

use crate::entity::{EntityId, SetId};
use crate::set::EntitySet;
use crate::subcollection::{CountScratch, SubCollection};
use setdisc_util::FxHashMap;

/// Greedily selects up to `b` entities forming one multiple-choice question.
/// Returns fewer when the candidates are fully distinguished earlier, and an
/// empty vector when `view` has no informative entity.
pub fn select_batch(
    view: &SubCollection<'_>,
    b: usize,
    scratch: &mut CountScratch,
) -> Vec<EntityId> {
    if view.len() < 2 || b == 0 {
        return Vec::new();
    }
    let inf = view.informative_entities(scratch);
    let mut chosen: Vec<EntityId> = Vec::with_capacity(b);
    // signature[i] = bitmask of chosen-entity membership for candidate i.
    let mut signatures: Vec<u64> = vec![0; view.len()];

    for round in 0..b.min(63) {
        let mut best: Option<(usize, u64, EntityId)> = None; // (-cells, sumsq, id) minimized
        for ec in &inf {
            if chosen.contains(&ec.entity) {
                continue;
            }
            // Extend each candidate's signature by this entity's bit.
            let mut cells: FxHashMap<u64, u64> = FxHashMap::default();
            for (i, &id) in view.ids().iter().enumerate() {
                let bit = u64::from(view.collection().set(id).contains(ec.entity));
                let sig = signatures[i] | (bit << round);
                *cells.entry(sig).or_insert(0) += 1;
            }
            let n_cells = cells.len();
            let sumsq: u64 = cells.values().map(|&c| c * c).sum();
            let key = (usize::MAX - n_cells, sumsq, ec.entity);
            if best.is_none_or(|(a, b_, e)| key < (a, b_, e)) {
                best = Some(key);
            }
        }
        let Some((inv_cells, _, e)) = best else { break };
        let n_cells = usize::MAX - inv_cells;
        chosen.push(e);
        for (i, &id) in view.ids().iter().enumerate() {
            let bit = u64::from(view.collection().set(id).contains(e));
            signatures[i] |= bit << round;
        }
        if n_cells == view.len() {
            break; // fully distinguished — no point adding more entities
        }
    }
    chosen
}

/// Filters `view` to the candidates whose membership pattern over `batch`
/// matches `answers` (answers\[i\] ⇔ batch\[i\] is in the target).
pub fn apply_batch_answer<'c>(
    view: &SubCollection<'c>,
    batch: &[EntityId],
    answers: &[bool],
) -> SubCollection<'c> {
    assert_eq!(batch.len(), answers.len(), "one answer per entity");
    view.filter(|id| {
        let set = view.collection().set(id);
        batch
            .iter()
            .zip(answers)
            .all(|(&e, &a)| set.contains(e) == a)
    })
}

/// Simulated multi-choice user: marks which batch entities are in `target`.
pub fn simulate_batch_answers(target: &EntitySet, batch: &[EntityId]) -> Vec<bool> {
    batch.iter().map(|&e| target.contains(e)).collect()
}

/// Outcome of a batch-mode discovery run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Remaining candidates (one = discovered).
    pub candidates: Vec<SetId>,
    /// Number of multi-choice interactions (screens shown).
    pub interactions: usize,
    /// Total entities the user had to judge across interactions.
    pub entities_judged: usize,
}

/// Runs batched discovery for a known target: at most `b` entities per
/// interaction, until one candidate remains.
pub fn run_batched(view: &SubCollection<'_>, target: &EntitySet, b: usize) -> BatchOutcome {
    let mut scratch = CountScratch::new();
    let mut current = view.clone();
    let mut interactions = 0;
    let mut entities_judged = 0;
    while current.len() > 1 {
        let batch = select_batch(&current, b, &mut scratch);
        if batch.is_empty() {
            break;
        }
        let answers = simulate_batch_answers(target, &batch);
        interactions += 1;
        entities_judged += batch.len();
        current = apply_batch_answer(&current, &batch, &answers);
    }
    BatchOutcome {
        candidates: current.ids().to_vec(),
        interactions,
        entities_judged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::Collection;
    use crate::discovery::{Session, SimulatedOracle};
    use crate::strategy::MostEven;

    fn figure1() -> Collection {
        Collection::from_raw_sets(vec![
            vec![0, 1, 2, 3],
            vec![0, 3, 4],
            vec![0, 1, 2, 3, 5],
            vec![0, 1, 2, 6, 7],
            vec![0, 1, 7, 8],
            vec![0, 1, 9, 10],
            vec![0, 1, 6],
        ])
        .unwrap()
    }

    #[test]
    fn batch_selection_is_informative_and_distinct() {
        let c = figure1();
        let v = c.full_view();
        let mut scratch = CountScratch::new();
        let batch = select_batch(&v, 3, &mut scratch);
        assert!(!batch.is_empty() && batch.len() <= 3);
        let unique: std::collections::HashSet<_> = batch.iter().collect();
        assert_eq!(unique.len(), batch.len());
        assert!(!batch.contains(&EntityId(0)), "uninformative entity");
    }

    #[test]
    fn batch_answers_filter_to_target() {
        let c = figure1();
        let v = c.full_view();
        let mut scratch = CountScratch::new();
        for (id, target) in c.iter() {
            let batch = select_batch(&v, 3, &mut scratch);
            let answers = simulate_batch_answers(target, &batch);
            let filtered = apply_batch_answer(&v, &batch, &answers);
            assert!(filtered.ids().contains(&id), "target survives filtering");
        }
    }

    #[test]
    fn batched_discovery_finds_every_target() {
        let c = figure1();
        let v = c.full_view();
        for (id, target) in c.iter() {
            let out = run_batched(&v, target, 3);
            assert_eq!(out.candidates, vec![id]);
        }
    }

    #[test]
    fn batching_reduces_interactions() {
        // b=3 should resolve Figure 1 in ≤ the number of single-question
        // interactions (usually far fewer screens).
        let c = figure1();
        let v = c.full_view();
        for (id, target) in c.iter() {
            let batched = run_batched(&v, target, 3);
            let mut session = Session::new(&c, &[], MostEven::new());
            let single = session.run(&mut SimulatedOracle::new(target)).unwrap();
            assert!(
                batched.interactions <= single.questions.max(1),
                "target {id}: {} screens vs {} questions",
                batched.interactions,
                single.questions
            );
        }
    }

    #[test]
    fn batch_of_one_equals_single_question_mode() {
        let c = figure1();
        let v = c.full_view();
        let target = c.set(SetId(4));
        let out = run_batched(&v, target, 1);
        assert_eq!(out.candidates, vec![SetId(4)]);
        assert_eq!(out.interactions, out.entities_judged);
    }

    #[test]
    fn empty_and_trivial_views() {
        let c = figure1();
        let mut scratch = CountScratch::new();
        let v1 = crate::subcollection::SubCollection::from_ids(&c, vec![SetId(0)]);
        assert!(select_batch(&v1, 3, &mut scratch).is_empty());
        assert!(select_batch(&c.full_view(), 0, &mut scratch).is_empty());
    }

    #[test]
    #[should_panic(expected = "one answer per entity")]
    fn mismatched_answers_panic() {
        let c = figure1();
        let v = c.full_view();
        apply_batch_answer(&v, &[EntityId(1)], &[true, false]);
    }
}
