//! Non-uniform priors over candidate sets (§7 future work, implemented).
//!
//! When sets are not equally likely to be the target, the quantity to
//! minimize is the *expected* number of questions `Σᵢ pᵢ·depth(Sᵢ)`. The
//! greedy rule generalizes most-even partitioning to most-even **probability
//! mass**: choose the entity whose yes-side mass is closest to half — the
//! weighted information-gain argmax.

use crate::entity::{EntityId, SetId};
use crate::error::{Result, SetDiscError};
use crate::strategy::SelectionStrategy;
use crate::subcollection::{CountScratch, SubCollection};
use crate::tree::{DecisionTree, Node};
use setdisc_util::{FxHashMap, FxHashSet};

/// A prior distribution over the sets of one collection, aligned by
/// [`SetId`]. Weights are non-negative and normalized at construction.
#[derive(Clone, Debug)]
pub struct Priors {
    weights: Vec<f64>,
}

impl Priors {
    /// Uniform prior over `n` sets.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0);
        Self {
            weights: vec![1.0 / n as f64; n],
        }
    }

    /// Normalized prior from raw non-negative weights.
    pub fn from_weights(raw: Vec<f64>) -> Result<Self> {
        if raw.is_empty() {
            return Err(SetDiscError::EmptyCollection);
        }
        if raw.iter().any(|&w| !w.is_finite() || w < 0.0) {
            return Err(SetDiscError::InvalidTree(
                "priors must be finite and non-negative".into(),
            ));
        }
        let total: f64 = raw.iter().sum();
        if total <= 0.0 {
            return Err(SetDiscError::InvalidTree("priors sum to zero".into()));
        }
        Ok(Self {
            weights: raw.into_iter().map(|w| w / total).collect(),
        })
    }

    /// Weight of one set.
    #[inline]
    pub fn weight(&self, id: SetId) -> f64 {
        self.weights.get(id.0 as usize).copied().unwrap_or(0.0)
    }

    /// Number of sets covered.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when empty (unreachable through constructors).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Total mass of a view's candidates (1.0 for the full collection).
    pub fn mass(&self, view: &SubCollection<'_>) -> f64 {
        view.ids().iter().map(|&id| self.weight(id)).sum()
    }
}

/// Entity selection maximizing weighted information gain: the entity whose
/// yes-branch probability mass is closest to half the view's mass.
pub struct WeightedMostEven {
    priors: Priors,
    scratch: CountScratch,
}

impl WeightedMostEven {
    /// Strategy with the given priors (indexed by the collection's set ids).
    pub fn new(priors: Priors) -> Self {
        Self {
            priors,
            scratch: CountScratch::new(),
        }
    }
}

impl SelectionStrategy for WeightedMostEven {
    fn name(&self) -> String {
        "WeightedMostEven".into()
    }

    fn select_excluding(
        &mut self,
        view: &SubCollection<'_>,
        excluded: &FxHashSet<EntityId>,
    ) -> Option<EntityId> {
        if view.len() < 2 {
            return None;
        }
        let total_mass = self.priors.mass(view);
        // Mass of the yes-side per informative entity. Entity counts give
        // set membership; accumulate weighted counts with one pass per set.
        let mut inf = view.informative_entities(&mut self.scratch);
        if !excluded.is_empty() {
            inf.retain(|ec| !excluded.contains(&ec.entity));
        }
        if inf.is_empty() {
            return None;
        }
        let wanted: FxHashMap<EntityId, usize> = inf
            .iter()
            .enumerate()
            .map(|(i, ec)| (ec.entity, i))
            .collect();
        let mut yes_mass = vec![0.0f64; inf.len()];
        for &id in view.ids() {
            let w = self.priors.weight(id);
            if w == 0.0 {
                continue;
            }
            for e in view.collection().set(id).iter() {
                if let Some(&i) = wanted.get(&e) {
                    yes_mass[i] += w;
                }
            }
        }
        inf.iter()
            .enumerate()
            .map(|(i, ec)| {
                let imbalance = (2.0 * yes_mass[i] - total_mass).abs();
                // total_cmp-compatible ordering with id tie-break.
                (imbalance.to_bits(), ec.entity)
            })
            .min()
            .map(|(_, e)| e)
    }
}

/// Expected number of questions of `tree` under `priors` — the weighted
/// generalization of Definition 3.2.
pub fn expected_depth(tree: &DecisionTree, priors: &Priors) -> f64 {
    let mut total = 0.0;
    let mut stack = vec![(tree.root(), 0u32)];
    while let Some((id, depth)) = stack.pop() {
        match *tree.node(id) {
            Node::Leaf { set } => total += priors.weight(set) * depth as f64,
            Node::Internal { yes, no, .. } => {
                stack.push((yes, depth + 1));
                stack.push((no, depth + 1));
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_tree;
    use crate::collection::Collection;
    use crate::strategy::MostEven;

    fn figure1() -> Collection {
        Collection::from_raw_sets(vec![
            vec![0, 1, 2, 3],
            vec![0, 3, 4],
            vec![0, 1, 2, 3, 5],
            vec![0, 1, 2, 6, 7],
            vec![0, 1, 7, 8],
            vec![0, 1, 9, 10],
            vec![0, 1, 6],
        ])
        .unwrap()
    }

    #[test]
    fn uniform_priors_match_unweighted_costs() {
        let c = figure1();
        let v = c.full_view();
        let priors = Priors::uniform(7);
        let t = build_tree(&v, &mut MostEven::new()).unwrap();
        let expected = expected_depth(&t, &priors);
        assert!((expected - t.avg_depth()).abs() < 1e-9);
    }

    #[test]
    fn priors_validation() {
        assert!(Priors::from_weights(vec![]).is_err());
        assert!(Priors::from_weights(vec![1.0, -0.5]).is_err());
        assert!(Priors::from_weights(vec![0.0, 0.0]).is_err());
        assert!(Priors::from_weights(vec![f64::NAN]).is_err());
        let p = Priors::from_weights(vec![1.0, 3.0]).unwrap();
        assert!((p.weight(SetId(0)) - 0.25).abs() < 1e-12);
        assert!((p.weight(SetId(1)) - 0.75).abs() < 1e-12);
        assert_eq!(p.weight(SetId(9)), 0.0);
    }

    #[test]
    fn skewed_priors_pull_the_hot_set_up() {
        // Give S2 (={a,d,e}) 90% of the mass: the weighted tree should
        // place it at depth ≤ its depth in the uniform tree, and the
        // expected depth must beat the uniform tree's.
        let c = figure1();
        let v = c.full_view();
        let mut raw = vec![0.1 / 6.0; 7];
        raw[1] = 0.9;
        let priors = Priors::from_weights(raw).unwrap();

        let t_uniform = build_tree(&v, &mut MostEven::new()).unwrap();
        let t_weighted = build_tree(&v, &mut WeightedMostEven::new(priors.clone())).unwrap();
        t_weighted.validate(&v).unwrap();

        let d_uniform = t_uniform.depth_of(SetId(1)).unwrap();
        let d_weighted = t_weighted.depth_of(SetId(1)).unwrap();
        assert!(d_weighted <= d_uniform, "{d_weighted} > {d_uniform}");
        assert!(
            expected_depth(&t_weighted, &priors) <= expected_depth(&t_uniform, &priors) + 1e-12
        );
        // S2 carries 90% of the mass, so it should sit very near the root.
        assert!(d_weighted <= 2);
    }

    #[test]
    fn weighted_strategy_respects_exclusions() {
        let c = figure1();
        let v = c.full_view();
        let priors = Priors::uniform(7);
        let mut s = WeightedMostEven::new(priors);
        let first = s.select(&v).unwrap();
        let mut excluded = FxHashSet::default();
        excluded.insert(first);
        let second = s.select_excluding(&v, &excluded).unwrap();
        assert_ne!(first, second);
    }

    #[test]
    fn mass_accounts_for_view() {
        let c = figure1();
        let priors = Priors::uniform(7);
        assert!((priors.mass(&c.full_view()) - 1.0).abs() < 1e-12);
        let half =
            crate::subcollection::SubCollection::from_ids(&c, vec![SetId(0), SetId(1), SetId(2)]);
        assert!((priors.mass(&half) - 3.0 / 7.0).abs() < 1e-12);
    }
}
