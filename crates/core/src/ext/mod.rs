//! Extensions sketched in §6 and §7 of the paper, fully implemented:
//!
//! * [`weighted`] — non-uniform priors over candidate sets (§7 "sets not
//!   equally likely"): weighted entity selection and expected-depth costs.
//! * [`noisy`] — recovery from erroneous answers (§6 "possibility of
//!   errors"): confirm-and-backtrack sessions over a [`crate::discovery`]
//!   session.
//! * [`batch`] — multiple-choice questions (§6): select a small batch of
//!   entities whose joint answer signature maximally partitions the
//!   candidates.
//!
//! The "unanswered questions" extension of §6 needs no module of its own —
//! [`crate::discovery::Answer::Unknown`] excludes the entity and re-selects,
//! exactly as the paper prescribes.

pub mod batch;
pub mod noisy;
pub mod weighted;
