//! Recovery from erroneous answers (§6 "possibility of errors in answers").
//!
//! A lying answer never *contradicts* the search — every question is
//! informative for the current candidates, so both branches are non-empty
//! and the session resolves to *some* set; with noise it is simply the wrong
//! one. Detection therefore needs a final confirmation step, and recovery
//! follows the paper's suggestion: *backtrack and revisit constraints*.
//!
//! [`RecoveringSession`] runs the ordinary loop, then presents the resolved
//! set for confirmation. On rejection it backtracks: answers are revisited
//! most-recent-first, each one is flipped, and the session re-filters and
//! re-runs from there. With at most one erroneous answer and a truthful
//! confirmation oracle the true target is always recovered; the retry budget
//! bounds the work when errors are more pervasive.

use crate::collection::Collection;
use crate::discovery::{Answer, Oracle};
use crate::entity::{EntityId, SetId};
use crate::error::{Result, SetDiscError};
use crate::strategy::SelectionStrategy;
use crate::subcollection::SubCollection;

/// An oracle that can additionally confirm a final answer — e.g. a user
/// shown the discovered set who accepts or rejects it.
pub trait ConfirmingOracle: Oracle {
    /// "Is this your set?" for the resolved candidate.
    fn confirm(&mut self, set: SetId) -> bool;
}

/// A [`crate::discovery::SimulatedOracle`] that also confirms, with an
/// optional list of question indices to answer incorrectly (deterministic
/// failure injection — the i-th *question* gets flipped).
pub struct FaultInjectingOracle<'a> {
    target: &'a crate::set::EntitySet,
    target_id: SetId,
    flip_questions: Vec<usize>,
    asked: usize,
    /// Number of answers actually flipped.
    pub flips_done: usize,
}

impl<'a> FaultInjectingOracle<'a> {
    /// Oracle for `target` (with its id) flipping the listed question
    /// indices (0-based).
    pub fn new(
        target: &'a crate::set::EntitySet,
        target_id: SetId,
        flip_questions: Vec<usize>,
    ) -> Self {
        Self {
            target,
            target_id,
            flip_questions,
            asked: 0,
            flips_done: 0,
        }
    }
}

impl Oracle for FaultInjectingOracle<'_> {
    fn answer(&mut self, entity: EntityId) -> Answer {
        let truth = self.target.contains(entity);
        let flip = self.flip_questions.contains(&self.asked);
        self.asked += 1;
        if flip {
            self.flips_done += 1;
        }
        if truth != flip {
            Answer::Yes
        } else {
            Answer::No
        }
    }
}

impl ConfirmingOracle for FaultInjectingOracle<'_> {
    fn confirm(&mut self, set: SetId) -> bool {
        set == self.target_id
    }
}

/// Transcript plus resolved set of one (re)run of the search.
type RunFromResult = (Vec<(EntityId, Answer)>, Option<SetId>);

/// Outcome of a recovering run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// The confirmed set.
    pub discovered: SetId,
    /// Total yes/no questions across all attempts (including re-asks).
    pub questions: usize,
    /// Confirmation prompts shown.
    pub confirmations: usize,
    /// Backtracking attempts performed (0 = first run confirmed).
    pub backtracks: usize,
}

/// Discovery with confirm-and-backtrack error recovery.
pub struct RecoveringSession<'c, S: SelectionStrategy> {
    collection: &'c Collection,
    initial_candidates: SubCollection<'c>,
    strategy: S,
    max_backtracks: usize,
}

impl<'c, S: SelectionStrategy> RecoveringSession<'c, S> {
    /// Session over the supersets of `initial`, with a backtrack budget.
    pub fn new(
        collection: &'c Collection,
        initial: &[EntityId],
        strategy: S,
        max_backtracks: usize,
    ) -> Self {
        Self {
            collection,
            initial_candidates: collection.supersets_of(initial),
            strategy,
            max_backtracks,
        }
    }

    /// Runs discovery; on a rejected confirmation, flips recorded answers
    /// most-recent-first and re-runs the tail of the search.
    pub fn run(&mut self, oracle: &mut dyn ConfirmingOracle) -> Result<RecoveryOutcome> {
        let mut questions = 0usize;
        let mut confirmations = 0usize;

        // First pass: record the answer transcript.
        let (original, resolved) = self.run_from(&[], oracle, &mut questions)?;
        if let Some(set) = resolved {
            confirmations += 1;
            if oracle.confirm(set) {
                return Ok(RecoveryOutcome {
                    discovered: set,
                    questions,
                    confirmations,
                    backtracks: 0,
                });
            }
        }

        // Backtrack over the ORIGINAL transcript: flip answer i, most recent
        // first, keep the prefix pinned, and continue the search live. With
        // exactly one erroneous answer this is guaranteed to reach the
        // attempt that flips the error, after which every constraint is
        // truthful and the target must survive to resolution.
        for attempt in 1..=self.max_backtracks {
            let Some(flip_at) = original.len().checked_sub(attempt) else {
                break;
            };
            let mut pinned: Vec<(EntityId, Answer)> = original[..flip_at].to_vec();
            let (e, a) = original[flip_at];
            let flipped = match a {
                Answer::Yes => Answer::No,
                Answer::No => Answer::Yes,
                Answer::Unknown => Answer::Unknown,
            };
            pinned.push((e, flipped));
            questions += 1; // re-asking the flipped question is a user interaction
            let (_, resolved) = self.run_from(&pinned, oracle, &mut questions)?;
            if let Some(set) = resolved {
                confirmations += 1;
                if oracle.confirm(set) {
                    return Ok(RecoveryOutcome {
                        discovered: set,
                        questions,
                        confirmations,
                        backtracks: attempt,
                    });
                }
            }
        }
        Err(SetDiscError::RecoveryExhausted {
            retries: self.max_backtracks,
        })
    }

    /// Replays `pinned` answers, then continues asking the oracle until
    /// resolution. Returns the full transcript and the resolved set (if a
    /// single candidate remained).
    fn run_from(
        &mut self,
        pinned: &[(EntityId, Answer)],
        oracle: &mut dyn Oracle,
        questions: &mut usize,
    ) -> Result<RunFromResult> {
        let mut candidates = self.initial_candidates.clone();
        let mut transcript = Vec::with_capacity(pinned.len() + 8);
        let mut excluded = setdisc_util::FxHashSet::default();
        for &(e, a) in pinned {
            apply(&mut candidates, &mut excluded, e, a);
            transcript.push((e, a));
        }
        while candidates.len() > 1 {
            let Some(e) = self.strategy.select_excluding(&candidates, &excluded) else {
                break;
            };
            let a = oracle.answer(e);
            *questions += usize::from(a != Answer::Unknown);
            apply(&mut candidates, &mut excluded, e, a);
            transcript.push((e, a));
        }
        let resolved = match candidates.ids() {
            [one] => Some(*one),
            _ => None,
        };
        let _ = self.collection;
        Ok((transcript, resolved))
    }
}

fn apply<'c>(
    candidates: &mut SubCollection<'c>,
    excluded: &mut setdisc_util::FxHashSet<EntityId>,
    e: EntityId,
    a: Answer,
) {
    match a {
        Answer::Yes => {
            let (yes, _) = candidates.partition(e);
            *candidates = yes;
        }
        Answer::No => {
            let (_, no) = candidates.partition(e);
            *candidates = no;
        }
        Answer::Unknown => {
            excluded.insert(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::MostEven;

    fn figure1() -> Collection {
        Collection::from_raw_sets(vec![
            vec![0, 1, 2, 3],
            vec![0, 3, 4],
            vec![0, 1, 2, 3, 5],
            vec![0, 1, 2, 6, 7],
            vec![0, 1, 7, 8],
            vec![0, 1, 9, 10],
            vec![0, 1, 6],
        ])
        .unwrap()
    }

    #[test]
    fn clean_run_confirms_immediately() {
        let c = figure1();
        for (id, target) in c.iter() {
            let mut session = RecoveringSession::new(&c, &[], MostEven::new(), 4);
            let mut oracle = FaultInjectingOracle::new(target, id, vec![]);
            let out = session.run(&mut oracle).unwrap();
            assert_eq!(out.discovered, id);
            assert_eq!(out.backtracks, 0);
            assert_eq!(out.confirmations, 1);
        }
    }

    #[test]
    fn single_lie_on_last_question_is_recovered() {
        let c = figure1();
        for (id, target) in c.iter() {
            // Find how many questions a clean run takes, then flip the last.
            let mut probe = RecoveringSession::new(&c, &[], MostEven::new(), 0);
            let mut clean = FaultInjectingOracle::new(target, id, vec![]);
            let q = probe.run(&mut clean).unwrap().questions;
            if q == 0 {
                continue;
            }
            let mut session = RecoveringSession::new(&c, &[], MostEven::new(), 8);
            let mut oracle = FaultInjectingOracle::new(target, id, vec![q - 1]);
            let out = session.run(&mut oracle).unwrap();
            assert_eq!(out.discovered, id, "target {id}");
            assert!(out.backtracks >= 1);
        }
    }

    #[test]
    fn single_lie_on_first_question_is_recovered() {
        let c = figure1();
        let id = SetId(0);
        let target = c.set(id);
        let mut session = RecoveringSession::new(&c, &[], MostEven::new(), 16);
        let mut oracle = FaultInjectingOracle::new(target, id, vec![0]);
        let out = session.run(&mut oracle).unwrap();
        assert_eq!(out.discovered, id);
        assert!(out.backtracks >= 1);
        assert!(out.confirmations >= 1 && out.confirmations <= out.backtracks + 1);
    }

    #[test]
    fn budget_zero_with_a_lie_errors() {
        let c = figure1();
        let id = SetId(3);
        let target = c.set(id);
        let mut session = RecoveringSession::new(&c, &[], MostEven::new(), 0);
        let mut oracle = FaultInjectingOracle::new(target, id, vec![0]);
        let err = session.run(&mut oracle).unwrap_err();
        assert_eq!(err, SetDiscError::RecoveryExhausted { retries: 0 });
    }

    #[test]
    fn recovery_costs_extra_questions() {
        let c = figure1();
        let id = SetId(4);
        let target = c.set(id);
        let mut clean_session = RecoveringSession::new(&c, &[], MostEven::new(), 0);
        let clean_q = clean_session
            .run(&mut FaultInjectingOracle::new(target, id, vec![]))
            .unwrap()
            .questions;
        let mut session = RecoveringSession::new(&c, &[], MostEven::new(), 8);
        let mut oracle = FaultInjectingOracle::new(target, id, vec![0]);
        let out = session.run(&mut oracle).unwrap();
        assert_eq!(out.discovered, id);
        assert!(out.questions > clean_q, "recovery is not free");
    }
}
