//! Collection preprocessing transforms.
//!
//! [`collapse_equivalent_entities`] merges entities that appear in exactly
//! the same sets into one representative. Two such entities induce the same
//! partition at *every* node of every search, so asking about either is the
//! same question — collapsing them shrinks the universe (often drastically
//! for query-output collections, where thousands of rows share a membership
//! pattern) without changing any question count. It composes with the
//! in-loop partition dedup of [`crate::lookahead`]: dedup removes repeat
//! work per node, collapsing removes it globally, including from counting
//! passes.

use crate::collection::{Collection, CollectionBuilder};
use crate::entity::EntityId;
use crate::set::EntitySet;
use setdisc_util::FxHashMap;

/// Result of entity collapsing.
pub struct CollapsedCollection {
    /// The rewritten collection over representative entities.
    pub collection: Collection,
    /// For each representative, the original entities it stands for
    /// (singleton classes included). Sorted by representative id.
    pub classes: Vec<(EntityId, Vec<EntityId>)>,
}

impl CollapsedCollection {
    /// Representative for an original entity, if it occurs in any set.
    pub fn representative_of(&self, original: EntityId) -> Option<EntityId> {
        self.classes
            .iter()
            .find(|(_, members)| members.contains(&original))
            .map(|&(rep, _)| rep)
    }

    /// Number of equivalence classes (= distinct entities after collapse).
    pub fn n_classes(&self) -> usize {
        self.classes.len()
    }
}

/// Collapses membership-equivalent entities. The representative of a class
/// is its smallest original entity id, preserving deterministic tie-break
/// behavior relative to the uncollapsed collection.
pub fn collapse_equivalent_entities(collection: &Collection) -> CollapsedCollection {
    // Signature of an entity = its membership `(fingerprint, count)` from
    // one counting pass over the full view — the same digest the lookahead
    // dedup uses, so grouping is O(1) per entity instead of hashing each
    // inverted list (collision odds are negligible; see
    // `setdisc_util::hash`). Entities in no set are never touched by the
    // pass and drop out naturally.
    let view = collection.full_view();
    let mut scratch = crate::subcollection::CountScratch::new();
    let mut stats = Vec::new();
    view.count_entities_with_fp(&mut scratch, &mut stats);
    let mut class_of: FxHashMap<(setdisc_util::Fingerprint, u32), Vec<EntityId>> =
        FxHashMap::default();
    for s in &stats {
        class_of.entry((s.fp, s.count)).or_default().push(s.entity);
    }
    let mut classes: Vec<(EntityId, Vec<EntityId>)> = class_of
        .into_values()
        .map(|mut members| {
            members.sort_unstable();
            (members[0], members)
        })
        .collect();
    classes.sort_unstable_by_key(|&(rep, _)| rep);

    // Rewrite sets keeping only representatives.
    let keep: setdisc_util::FxHashSet<EntityId> = classes.iter().map(|&(rep, _)| rep).collect();
    let mut builder = CollectionBuilder::new();
    for (_, set) in collection.iter() {
        builder.push(EntitySet::from_sorted_unchecked(
            set.iter().filter(|e| keep.contains(e)).collect(),
        ));
    }
    let built = builder.build().expect("same number of non-empty sets");
    assert_eq!(
        built.collection.len(),
        collection.len(),
        "collapsing must not merge distinct sets"
    );
    CollapsedCollection {
        collection: built.collection,
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_tree;
    use crate::cost::AvgDepth;
    use crate::lookahead::KLp;

    #[test]
    fn collapses_duplicate_membership_patterns() {
        // Entities 1 and 2 always co-occur; 3 and 4 likewise.
        let c =
            Collection::from_raw_sets(vec![vec![1, 2, 3, 4], vec![1, 2], vec![3, 4, 5], vec![5]])
                .unwrap();
        let collapsed = collapse_equivalent_entities(&c);
        assert_eq!(collapsed.collection.len(), 4);
        // {1,2} → 1, {3,4} → 3, {5} → 5: three classes.
        assert_eq!(collapsed.n_classes(), 3);
        assert_eq!(collapsed.representative_of(EntityId(2)), Some(EntityId(1)));
        assert_eq!(collapsed.representative_of(EntityId(4)), Some(EntityId(3)));
        assert_eq!(collapsed.representative_of(EntityId(5)), Some(EntityId(5)));
        assert_eq!(collapsed.representative_of(EntityId(99)), None);
    }

    #[test]
    fn collapse_preserves_tree_costs() {
        // Build a collection with heavy entity duplication: each "column"
        // of bits is repeated three times.
        let sets: Vec<Vec<u32>> = (0..8u32)
            .map(|i| {
                (0..3u32)
                    .filter(|b| i >> b & 1 == 1)
                    .flat_map(|b| [b * 3, b * 3 + 1, b * 3 + 2])
                    .chain([100])
                    .collect()
            })
            .collect();
        let c = Collection::from_raw_sets(sets).unwrap();
        let collapsed = collapse_equivalent_entities(&c);
        assert!(collapsed.collection.distinct_entities() < c.distinct_entities());
        let t_orig = build_tree(&c.full_view(), &mut KLp::<AvgDepth>::new(2)).unwrap();
        let t_coll = build_tree(
            &collapsed.collection.full_view(),
            &mut KLp::<AvgDepth>::new(2),
        )
        .unwrap();
        assert_eq!(t_orig.total_depth(), t_coll.total_depth());
        assert_eq!(t_orig.height(), t_coll.height());
    }

    #[test]
    fn collapse_is_idempotent() {
        let c = Collection::from_raw_sets(vec![vec![1, 2], vec![2, 3], vec![1, 3]]).unwrap();
        let once = collapse_equivalent_entities(&c);
        let twice = collapse_equivalent_entities(&once.collection);
        assert_eq!(once.n_classes(), twice.n_classes());
        assert_eq!(
            once.collection.distinct_entities(),
            twice.collection.distinct_entities()
        );
    }

    #[test]
    fn no_equivalences_is_a_noop() {
        let c = Collection::from_raw_sets(vec![vec![1, 2], vec![2, 3], vec![3, 1]]).unwrap();
        let collapsed = collapse_equivalent_entities(&c);
        assert_eq!(collapsed.n_classes(), 3);
        assert_eq!(collapsed.collection.distinct_entities(), 3);
    }

    #[test]
    fn discovery_equivalent_after_collapse() {
        use crate::discovery::{Session, SimulatedOracle};
        use crate::strategy::MostEven;
        let c = Collection::from_raw_sets(vec![
            vec![1, 2, 7],
            vec![1, 2, 8],
            vec![3, 4, 7],
            vec![3, 4, 8],
        ])
        .unwrap();
        let collapsed = collapse_equivalent_entities(&c);
        for (id, target) in collapsed.collection.iter() {
            let mut session = Session::over(collapsed.collection.full_view(), MostEven::new());
            let outcome = session.run(&mut SimulatedOracle::new(target)).unwrap();
            assert_eq!(outcome.discovered(), Some(id));
        }
    }
}
