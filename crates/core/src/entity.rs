//! Entity and set identifiers, plus a string interner for named entities.
//!
//! The algorithms operate purely on dense `u32` ids; names only matter at the
//! edges (loading data, rendering questions to a user), so the interner is a
//! thin optional companion rather than something the hot path touches.

use setdisc_util::FxHashMap;

/// Identifier of an entity (an element of the universe) — dense from 0.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct EntityId(pub u32);

/// Identifier of a set within a [`crate::Collection`] — dense from 0.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SetId(pub u32);

impl std::fmt::Display for EntityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl std::fmt::Display for SetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Bidirectional mapping between entity names and dense [`EntityId`]s.
#[derive(Default, Clone, Debug)]
pub struct EntityInterner {
    names: Vec<String>,
    index: FxHashMap<String, EntityId>,
}

impl EntityInterner {
    /// Empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, name: &str) -> EntityId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = EntityId(u32::try_from(self.names.len()).expect("entity universe exceeds u32"));
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<EntityId> {
        self.index.get(name).copied()
    }

    /// The name for `id`, if it was interned here.
    pub fn name(&self, id: EntityId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Renders `id` as its name, falling back to `e<id>`.
    pub fn display(&self, id: EntityId) -> String {
        self.name(id).map_or_else(|| id.to_string(), str::to_string)
    }

    /// Number of interned entities.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl setdisc_util::mem::HeapSize for EntityInterner {
    fn heap_bytes(&self) -> usize {
        use setdisc_util::mem::map_spine_bytes;
        self.names.heap_bytes()
            + map_spine_bytes::<String, EntityId>(self.index.capacity())
            + self.index.keys().map(String::capacity).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut i = EntityInterner::new();
        let a = i.intern("alpha");
        let b = i.intern("beta");
        assert_eq!(a, EntityId(0));
        assert_eq!(b, EntityId(1));
        assert_eq!(i.intern("alpha"), a);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn lookup_both_directions() {
        let mut i = EntityInterner::new();
        let a = i.intern("x");
        assert_eq!(i.get("x"), Some(a));
        assert_eq!(i.get("y"), None);
        assert_eq!(i.name(a), Some("x"));
        assert_eq!(i.name(EntityId(9)), None);
    }

    #[test]
    fn display_falls_back_to_id() {
        let mut i = EntityInterner::new();
        let a = i.intern("named");
        assert_eq!(i.display(a), "named");
        assert_eq!(i.display(EntityId(42)), "e42");
    }

    #[test]
    fn id_display() {
        assert_eq!(EntityId(3).to_string(), "e3");
        assert_eq!(SetId(7).to_string(), "S7");
    }
}
