//! Exact optimal decision trees by memoized branch-and-bound.
//!
//! Optimal construction is NP-complete (Hyafil & Rivest; paper §4.2), so
//! this is only meant for small collections — ground truth for tests, and
//! the "InfoGain is ≈0.048 above optimal" measurement of §5.3.2. Two things
//! keep it practical well past brute force:
//!
//! * sub-collections are memoized by their 128-bit content fingerprint (plus
//!   length), so shared subproblems are solved once with O(1) probes and no
//!   boxed key per entry;
//! * distinct entities inducing the *same partition* (in either orientation)
//!   are deduplicated using membership fingerprints from the counting pass —
//!   before the partition is materialized — and candidate partitions are
//!   bounded with `LB₀` before recursing;
//! * all recursion state (candidate lists, yes/no id buffers) lives in a
//!   depth-indexed [`LookaheadScratch`] arena, so steady-state search
//!   performs no heap allocation.

use crate::cost::{imbalance, Cost, CostModel, Lb0Table, UNBOUNDED};
use crate::entity::EntityId;
use crate::error::{Result, SetDiscError};
use crate::strategy::SelectionStrategy;
use crate::subcollection::{Candidate, LookaheadScratch, SubCollection};
use setdisc_util::{Fingerprint, FxHashMap, FxHashSet};
use std::mem;

/// Default guard against accidentally launching an exponential search.
pub const DEFAULT_MAX_SETS: usize = 64;

/// Memo key: `(view fingerprint, |view|)`.
type MemoKey = (Fingerprint, u32);

/// Exact optimal solver for a fixed cost metric.
pub struct OptimalSolver<M: CostModel> {
    memo: FxHashMap<MemoKey, (Cost, Option<EntityId>)>,
    memo_token: u64,
    scratch: LookaheadScratch,
    lb0: Lb0Table<M>,
    max_sets: usize,
    _metric: std::marker::PhantomData<M>,
}

impl<M: CostModel> Default for OptimalSolver<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: CostModel> OptimalSolver<M> {
    /// Solver with the default size guard.
    pub fn new() -> Self {
        Self::with_max_sets(DEFAULT_MAX_SETS)
    }

    /// Solver refusing collections larger than `max_sets`.
    pub fn with_max_sets(max_sets: usize) -> Self {
        Self {
            memo: FxHashMap::default(),
            memo_token: 0,
            scratch: LookaheadScratch::new(),
            lb0: Lb0Table::new(),
            max_sets,
            _metric: std::marker::PhantomData,
        }
    }

    /// Drops the memo when the solver is reused on a different collection
    /// (fingerprint keys are only unique within one collection's id space).
    fn prepare_for(&mut self, view: &SubCollection<'_>) {
        let token = view.collection().token();
        if token != self.memo_token {
            self.memo.clear();
            self.memo_token = token;
        }
    }

    /// The optimal scaled cost of a tree over `view`.
    pub fn optimal_cost(&mut self, view: &SubCollection<'_>) -> Result<Cost> {
        if view.is_empty() {
            return Err(SetDiscError::EmptyCollection);
        }
        if view.len() > self.max_sets {
            return Err(SetDiscError::InvalidTree(format!(
                "optimal solver capped at {} sets, got {}",
                self.max_sets,
                view.len()
            )));
        }
        self.prepare_for(view);
        Ok(self.solve(view, UNBOUNDED, 0))
    }

    /// Memoized branch-and-bound. Returns the exact optimum of the
    /// subproblem (the `limit` only prunes work, never changes the value
    /// when the true optimum is below it; when the optimum is `≥ limit` the
    /// returned value is some bound `≥ limit`, which the caller discards).
    fn solve(&mut self, view: &SubCollection<'_>, limit: Cost, depth: usize) -> Cost {
        let n = view.len() as u64;
        if n <= 1 {
            return 0;
        }
        self.lb0.ensure(n);
        let key: MemoKey = (view.fingerprint(), view.len() as u32);
        if let Some(&(cost, _)) = self.memo.get(&key) {
            return cost;
        }
        let (cost, entity) = self.search(view, limit, depth);
        if entity.is_some() {
            // Only exact results are memoized; limit-truncated searches are
            // not, since their value depends on the limit.
            self.memo.insert(key, (cost, entity));
        }
        cost
    }

    fn search(
        &mut self,
        view: &SubCollection<'_>,
        limit: Cost,
        depth: usize,
    ) -> (Cost, Option<EntityId>) {
        let n = view.len() as u64;
        let mut level = self.scratch.take_level(depth);
        view.informative_with_fp(&mut self.scratch.counts, &mut level.stats);
        for s in &level.stats {
            let n1 = s.count as u64;
            level.cand.push(Candidate {
                score: 0,
                imbalance: imbalance(n, n1),
                entity: s.entity,
                n1,
                fp: s.fp,
            });
        }
        level.cand.sort_unstable_by_key(|c| (c.imbalance, c.entity));

        let mut best = limit;
        let mut best_entity = None;
        let view_fp = view.fingerprint();

        for i in 0..level.cand.len() {
            let c = level.cand[i];
            let n1 = c.n1;
            let n2 = n - n1;
            // LB₀ bound before any recursion.
            let quick = M::combine(n, self.lb0.lb0(n1), self.lb0.lb0(n2));
            if quick >= best {
                continue;
            }
            // Canonical digest of the *unordered* partition — the smaller of
            // the two (side digest, side size) pairs; the complement side's
            // digest is derived by subtraction. Detects both same-side and
            // swapped-side duplicates without materializing the partition.
            let yes_key = (c.fp, n1);
            let no_key = (view_fp - c.fp, n2);
            if !level.seen.insert(yes_key.min(no_key)) {
                continue; // same split as an earlier entity
            }
            let Some(l_yes_limit) = M::ul_first(best, n, self.lb0.lb0(n2)) else {
                continue;
            };
            let (yes, no) = view.partition_into(
                c.entity,
                mem::take(&mut level.yes),
                mem::take(&mut level.no),
            );
            let total = {
                let l_yes = self.solve(&yes, l_yes_limit, depth + 1);
                let partial = M::combine(n, l_yes, self.lb0.lb0(n2));
                if partial >= best {
                    None
                } else {
                    M::ul_second(best, n, l_yes).map(|l_no_limit| {
                        let l_no = self.solve(&no, l_no_limit, depth + 1);
                        M::combine(n, l_yes, l_no)
                    })
                }
            };
            level.yes = yes.into_storage();
            level.no = no.into_storage();
            if let Some(total) = total {
                if total < best {
                    best = total;
                    best_entity = Some(c.entity);
                }
            }
        }
        self.scratch.put_level(depth, level);
        (best, best_entity)
    }

    /// Builds an actual optimal tree by re-deriving argmins from the memo.
    pub fn optimal_tree(&mut self, view: &SubCollection<'_>) -> Result<crate::tree::DecisionTree> {
        // Populate the memo first.
        let _ = self.optimal_cost(view)?;
        let mut strategy = OptimalStrategy { solver: self };
        crate::builder::build_tree(view, &mut strategy)
    }

    /// Memoized entries (diagnostics).
    pub fn memo_len(&self) -> usize {
        self.memo.len()
    }
}

/// Adapter exposing the solver as a [`SelectionStrategy`] so Algorithm 3 can
/// build the optimal tree.
struct OptimalStrategy<'s, M: CostModel> {
    solver: &'s mut OptimalSolver<M>,
}

impl<M: CostModel> SelectionStrategy for OptimalStrategy<'_, M> {
    fn name(&self) -> String {
        format!("Optimal({})", M::NAME)
    }

    fn select_excluding(
        &mut self,
        view: &SubCollection<'_>,
        excluded: &FxHashSet<EntityId>,
    ) -> Option<EntityId> {
        if view.len() < 2 {
            return None;
        }
        assert!(
            excluded.is_empty(),
            "optimal strategy does not support exclusions"
        );
        // solve() memoizes (cost, argmin); rerun to ensure presence.
        self.solver.prepare_for(view);
        let _ = self.solver.solve(view, UNBOUNDED, 0);
        let key: MemoKey = (view.fingerprint(), view.len() as u32);
        self.solver.memo.get(&key).and_then(|&(_, e)| e)
    }
}

/// Convenience: the optimal scaled cost of `view` under metric `M`.
pub fn optimal_cost<M: CostModel>(view: &SubCollection<'_>) -> Result<Cost> {
    OptimalSolver::<M>::new().optimal_cost(view)
}

/// Convenience: an optimal tree over `view` under metric `M`.
pub fn optimal_tree<M: CostModel>(view: &SubCollection<'_>) -> Result<crate::tree::DecisionTree> {
    OptimalSolver::<M>::new().optimal_tree(view)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_tree;
    use crate::collection::Collection;
    use crate::cost::{AvgDepth, Height};
    use crate::lookahead::KLp;

    fn figure1() -> Collection {
        Collection::from_raw_sets(vec![
            vec![0, 1, 2, 3],
            vec![0, 3, 4],
            vec![0, 1, 2, 3, 5],
            vec![0, 1, 2, 6, 7],
            vec![0, 1, 7, 8],
            vec![0, 1, 9, 10],
            vec![0, 1, 6],
        ])
        .unwrap()
    }

    #[test]
    fn figure1_optimum_matches_paper() {
        let c = figure1();
        let v = c.full_view();
        // §3: the optimal AD is 20/7; Fig 2a is optimal.
        assert_eq!(optimal_cost::<AvgDepth>(&v).unwrap(), 20);
        assert_eq!(optimal_cost::<Height>(&v).unwrap(), 3);
    }

    #[test]
    fn optimal_tree_achieves_optimal_cost_and_validates() {
        let c = figure1();
        let v = c.full_view();
        let t = optimal_tree::<AvgDepth>(&v).unwrap();
        t.validate(&v).unwrap();
        assert_eq!(t.total_depth(), 20);
        let t = optimal_tree::<Height>(&v).unwrap();
        t.validate(&v).unwrap();
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn optimum_never_below_lb0() {
        let c = figure1();
        let v = c.full_view();
        assert!(optimal_cost::<AvgDepth>(&v).unwrap() >= AvgDepth::lb0(7));
        assert!(optimal_cost::<Height>(&v).unwrap() >= Height::lb0(7));
    }

    #[test]
    fn disjoint_singletons_force_chain_costs() {
        // 5 disjoint singletons: every split is 1/(n-1) → chain tree.
        // Depths {1,2,3,4,4} → TD = 14, H = 4.
        let c =
            Collection::from_raw_sets(vec![vec![1], vec![2], vec![3], vec![4], vec![5]]).unwrap();
        let v = c.full_view();
        assert_eq!(optimal_cost::<AvgDepth>(&v).unwrap(), 14);
        assert_eq!(optimal_cost::<Height>(&v).unwrap(), 4);
    }

    #[test]
    fn bit_identified_sets_reach_lb0() {
        // 8 sets identified by 3 bit-entities → perfect tree = LB₀.
        let sets: Vec<Vec<u32>> = (0..8u32)
            .map(|i| {
                (0..3u32)
                    .filter(|b| i >> b & 1 == 1)
                    .map(|b| b + 1)
                    .chain([0])
                    .collect()
            })
            .collect();
        let c = Collection::from_raw_sets(sets).unwrap();
        let v = c.full_view();
        assert_eq!(optimal_cost::<AvgDepth>(&v).unwrap(), 24);
        assert_eq!(optimal_cost::<Height>(&v).unwrap(), 3);
    }

    #[test]
    fn klp_with_large_k_matches_optimal() {
        // §4.4.1: k ≥ optimal height → k-LP is optimal. Verify on several
        // small structured collections for both metrics.
        let collections = vec![
            figure1(),
            Collection::from_raw_sets(vec![
                vec![1, 2, 3],
                vec![2, 3, 4],
                vec![3, 4, 5],
                vec![1, 4],
                vec![2, 5],
                vec![1, 5, 6],
            ])
            .unwrap(),
            Collection::from_raw_sets(vec![vec![1], vec![2], vec![3], vec![4]]).unwrap(),
        ];
        for c in &collections {
            let v = c.full_view();
            // k = n bounds the height of every tree, so LB_k is the exact
            // optimal cost and greedy construction with it is optimal. (The
            // paper's sharper claim uses k ≥ height of an optimal tree; the
            // optimal *AD* tree may be taller than the optimal height, so
            // tests use the unconditional bound.)
            let k = c.len() as u32;
            let h_opt = optimal_cost::<Height>(&v).unwrap();
            let mut klp_h = KLp::<Height>::new(k);
            let t = build_tree(&v, &mut klp_h).unwrap();
            assert_eq!(t.height() as u64, h_opt, "height metric");
            let mut klp_ad = KLp::<AvgDepth>::new(k);
            let t = build_tree(&v, &mut klp_ad).unwrap();
            assert_eq!(
                t.total_depth(),
                optimal_cost::<AvgDepth>(&v).unwrap(),
                "AD metric"
            );
        }
    }

    #[test]
    fn greedy_can_be_suboptimal_but_never_below_optimal() {
        let c = figure1();
        let v = c.full_view();
        let opt = optimal_cost::<AvgDepth>(&v).unwrap();
        let mut greedy = crate::strategy::MostEven::new();
        let t = build_tree(&v, &mut greedy).unwrap();
        assert!(t.total_depth() >= opt);
    }

    #[test]
    fn size_guard_refuses_large_collections() {
        let sets: Vec<Vec<u32>> = (0..70u32).map(|i| vec![i]).collect();
        let c = Collection::from_raw_sets(sets).unwrap();
        let mut solver = OptimalSolver::<AvgDepth>::with_max_sets(32);
        assert!(solver.optimal_cost(&c.full_view()).is_err());
    }

    #[test]
    fn memo_is_shared_across_queries() {
        let c = figure1();
        let v = c.full_view();
        let mut solver = OptimalSolver::<AvgDepth>::new();
        let a = solver.optimal_cost(&v).unwrap();
        let entries = solver.memo_len();
        assert!(entries > 0);
        let b = solver.optimal_cost(&v).unwrap();
        assert_eq!(a, b);
        assert_eq!(solver.memo_len(), entries, "second query hits memo");
    }
}
