//! Lightweight views over a subset of a collection's sets.
//!
//! Every step of the search — tree construction, lookahead recursion,
//! interactive filtering — operates on some subset of the sets. A
//! [`SubCollection`] is a borrowed collection plus the subset held
//! primarily as a dense [`IdBitmap`] over the collection's `SetId` space
//! (with a cached popcount length), plus a 128-bit content [`Fingerprint`]
//! maintained incrementally at split time so lookahead memos can key on
//! `(fingerprint, len)` instead of boxed id vectors. The sorted id vector
//! that ordered traversals and the wire layer consume is materialized
//! **lazily** from the bitmap on first [`SubCollection::ids`] call — the
//! selection recursions never ask for it, which is what makes their splits
//! word-parallel instead of per-element.
//!
//! [`SubCollection::partition_into`] is the split kernel: when the entity
//! has a dense postings bitmap (see [`crate::bitset::EntityPostings`]) the
//! split is one `AND`/`ANDNOT` pass over the words, accumulating the
//! yes-side count and fingerprint from the result words; entities below the
//! dense threshold instead copy the parent's words and clear the few bits
//! named by their short posting list. Both children recycle caller-provided
//! [`SubStorage`] buffers, so steady-state recursion allocates nothing. The
//! classic id-vector merge survives as
//! [`SubCollection::partition_into_merge`] — the reference kernel property
//! tests and benches pin the bitmap paths against.
//!
//! Entity counting is the innermost hot loop (it runs at every node of every
//! lookahead). Two implementations exist and the entry points auto-select
//! by a cost model (see DESIGN.md §8): the element pass walks every member
//! of every set in the view into a reusable [`CountScratch`], while the
//! postings sweep intersects each occurring entity's postings with the
//! view's bitmap — popcounts for the counts, member decoding for the
//! membership fingerprints (the yes-side digest of `partition(entity)`,
//! computed in the same pass so duplicate-partition candidates can be
//! dropped without ever partitioning).
//!
//! [`LookaheadScratch`] completes the allocation-free recursion story:
//! depth-indexed reusable candidate/stat/storage buffers that
//! [`crate::lookahead`] and [`crate::optimal`] thread through their
//! recursion together with [`SubCollection::partition_into`].

use crate::bitset::IdBitmap;
use crate::collection::Collection;
use crate::cost::Cost;
use crate::entity::{EntityId, SetId};
use crate::weights::WeightTable;
use setdisc_util::{obs, Fingerprint, FxHashSet};
use std::sync::OnceLock;

/// Content digest of one set id (the unit [`SubCollection`] fingerprints
/// sum over). [`Collection::set_fp`] holds this value in a lookup table for
/// the hot paths.
#[inline]
pub fn fp_of_set(id: SetId) -> Fingerprint {
    Fingerprint::of(id.0 as u64)
}

/// What the counting dispatcher would decide for one pass, plus the cost-
/// model inputs it compared — see [`SubCollection::dispatch_preview`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DispatchPreview {
    /// `true` → the postings sweep runs; `false` → the element pass.
    pub use_postings: bool,
    /// Predicted element-pass cost driver: members summed over view sets.
    pub total_elements: u64,
    /// Predicted postings-sweep cost driver: the index's fixed scan cost.
    pub scan_cost: u64,
    /// The dispatch factor the comparison multiplied `scan_cost` by.
    pub factor: u64,
}

/// Cost-model calibration hook: when telemetry is armed, times `pass` and
/// records its measured cost in **milli-nanoseconds per predicted cost
/// unit** at `site` (so the histogram directly reads as "ns/unit ×1000" —
/// the fitted constant ROADMAP item 3's re-fit compares against the
/// committed dispatch factor). Disarmed this is one relaxed load and a
/// branch; the pass itself is always run exactly once.
#[inline]
fn record_kernel_cost(site: obs::Site, units: u64, pass: impl FnOnce()) {
    if !obs::armed() {
        pass();
        return;
    }
    let started = std::time::Instant::now();
    pass();
    let ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
    obs::record(site, ns.saturating_mul(1000) / units.max(1));
}

/// A view over a sorted subset of sets in a [`Collection`]: a dense bitmap
/// with a lazily materialized sorted id vector.
#[derive(Clone)]
pub struct SubCollection<'c> {
    collection: &'c Collection,
    bits: IdBitmap,
    len: u32,
    elements: u64,
    ids: OnceLock<Vec<SetId>>,
    fp: Fingerprint,
}

/// Recyclable backing storage of one [`SubCollection`] — its bitmap words
/// plus the id vector when it was materialized.
/// [`SubCollection::partition_into`] consumes two of these for the children
/// and [`SubCollection::into_storage`] recovers them, so a recursion that
/// keeps a pair per depth never reallocates.
#[derive(Default)]
pub struct SubStorage {
    pub(crate) ids: Vec<SetId>,
    pub(crate) bits: IdBitmap,
}

impl SubStorage {
    /// Fresh empty storage; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Occurrence statistics for one entity within a sub-collection.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EntityCount {
    /// The entity.
    pub entity: EntityId,
    /// Number of sets in the sub-collection containing it (`|C⁺|`).
    pub count: u32,
}

/// Occurrence statistics plus membership digest and prior mass for one
/// entity — what the weighted (§6) selection paths consume.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WeightedEntityStats {
    /// The entity.
    pub entity: EntityId,
    /// Number of member sets containing it (`|C⁺|`).
    pub count: u32,
    /// Membership digest (yes-side fingerprint), as on [`EntityStats`].
    pub fp: Fingerprint,
    /// Summed prior weight of the member sets containing it (`W(C⁺)`).
    pub wsum: u64,
}

/// Occurrence statistics plus membership digest for one entity.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EntityStats {
    /// The entity.
    pub entity: EntityId,
    /// Number of sets in the sub-collection containing it (`|C⁺|`).
    pub count: u32,
    /// Fingerprint of the member sets containing the entity — equal to the
    /// fingerprint of the yes side of `partition(entity)`. Entities with
    /// equal membership digests induce the same partition (up to the
    /// negligible fingerprint collision odds), so candidates can be
    /// deduplicated before partitioning.
    pub fp: Fingerprint,
}

impl<'c> SubCollection<'c> {
    /// View over the entire collection.
    pub fn full(collection: &'c Collection) -> Self {
        let ids: Vec<SetId> = (0..collection.len() as u32).map(SetId).collect();
        let fp = fp_of_ids(collection, &ids);
        Self::from_filled(collection, IdBitmap::full(collection.len()), ids, fp)
    }

    /// View over the given ids. Sorts and deduplicates them; panics on an id
    /// out of range (programmer error, not data error).
    pub fn from_ids(collection: &'c Collection, mut ids: Vec<SetId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        if let Some(last) = ids.last() {
            assert!(
                (last.0 as usize) < collection.len(),
                "set id {last} out of range"
            );
        }
        let fp = fp_of_ids(collection, &ids);
        let bits = IdBitmap::from_sorted_ids(collection.len(), &ids);
        Self::from_filled(collection, bits, ids, fp)
    }

    /// Internal constructor for ids that are already sorted and in range.
    pub(crate) fn from_sorted_unchecked(collection: &'c Collection, ids: Vec<SetId>) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        let fp = fp_of_ids(collection, &ids);
        let bits = IdBitmap::from_sorted_ids(collection.len(), &ids);
        Self::from_filled(collection, bits, ids, fp)
    }

    /// Internal constructor when the fingerprint of `ids` is already known.
    pub(crate) fn from_parts_unchecked(
        collection: &'c Collection,
        ids: Vec<SetId>,
        fp: Fingerprint,
    ) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        debug_assert_eq!(fp, fp_of_ids(collection, &ids));
        let bits = IdBitmap::from_sorted_ids(collection.len(), &ids);
        Self::from_filled(collection, bits, ids, fp)
    }

    /// Internal constructor trusting storage whose id vector is materialized
    /// and matches its bitmap (the zero-copy resume path of
    /// [`crate::engine::Engine`]).
    pub(crate) fn from_storage_unchecked(
        collection: &'c Collection,
        storage: SubStorage,
        fp: Fingerprint,
    ) -> Self {
        debug_assert!(storage.ids.windows(2).all(|w| w[0] < w[1]));
        debug_assert_eq!(fp, fp_of_ids(collection, &storage.ids));
        debug_assert_eq!(storage.bits.len(), storage.ids.len());
        debug_assert!(storage.ids.iter().all(|&id| storage.bits.contains(id)));
        Self::from_filled(collection, storage.bits, storage.ids, fp)
    }

    /// Internal constructor from a bitmap whose length and fingerprint are
    /// already known; the id vector stays unmaterialized.
    fn from_bits_unchecked(
        collection: &'c Collection,
        bits: IdBitmap,
        len: u32,
        elements: u64,
        fp: Fingerprint,
    ) -> Self {
        debug_assert_eq!(bits.len(), len as usize);
        debug_assert_eq!(
            elements,
            bits.iter()
                .map(|id| collection.set_size(id) as u64)
                .sum::<u64>()
        );
        Self {
            collection,
            bits,
            len,
            elements,
            ids: OnceLock::new(),
            fp,
        }
    }

    /// Internal constructor with both representations in hand.
    fn from_filled(
        collection: &'c Collection,
        bits: IdBitmap,
        ids: Vec<SetId>,
        fp: Fingerprint,
    ) -> Self {
        let len = ids.len() as u32;
        let elements = ids.iter().map(|&id| collection.set_size(id) as u64).sum();
        let cell = OnceLock::new();
        let _ = cell.set(ids);
        Self {
            collection,
            bits,
            len,
            elements,
            ids: cell,
            fp,
        }
    }

    /// The underlying collection.
    #[inline]
    pub fn collection(&self) -> &'c Collection {
        self.collection
    }

    /// Sorted ids of the member sets, decoded from the bitmap on first use
    /// and cached. The selection hot paths never call this; ordered
    /// consumers (wire layer, reports, tests) do.
    #[inline]
    pub fn ids(&self) -> &[SetId] {
        self.ids.get_or_init(|| self.bits.iter().collect())
    }

    /// The dense bitmap over the collection's id space — the primary
    /// membership representation.
    #[inline]
    pub fn bitmap(&self) -> &IdBitmap {
        &self.bits
    }

    /// The smallest member id (`None` on an empty view) without
    /// materializing the id vector.
    #[inline]
    pub fn first_id(&self) -> Option<SetId> {
        self.bits.first()
    }

    /// 128-bit content digest of the id set — the allocation-free identity
    /// the lookahead memos key on (always paired with [`Self::len`]).
    #[inline]
    pub fn fingerprint(&self) -> Fingerprint {
        self.fp
    }

    /// Number of member sets (cached; no popcount on query).
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the view holds no sets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Recovers the id vector (materializing it if no one asked before).
    /// Prefer [`Self::into_storage`] in recursion hot paths — it recycles
    /// the bitmap words without forcing materialization.
    pub fn into_ids(self) -> Vec<SetId> {
        let bits = self.bits;
        self.ids
            .into_inner()
            .unwrap_or_else(|| bits.iter().collect())
    }

    /// Recovers the backing storage for reuse (the counterpart of
    /// [`Self::partition_into`]'s buffer recycling). The id vector is empty
    /// unless it was materialized.
    pub fn into_storage(self) -> SubStorage {
        SubStorage {
            ids: self.ids.into_inner().unwrap_or_default(),
            bits: self.bits,
        }
    }

    /// Counts, for every entity occurring in the view, how many member sets
    /// contain it. Appends results to `out` in a deterministic order
    /// (entity-id ascending on the postings sweep, first-touched on the
    /// element pass — callers needing a specific order re-sort by a total
    /// key); resets `scratch` before returning.
    pub fn count_entities(&self, scratch: &mut CountScratch, out: &mut Vec<EntityCount>) {
        let _span = obs::span(obs::Site::Count);
        if self.use_postings(1) {
            let units = self.collection.postings().scan_cost();
            record_kernel_cost(obs::Site::CostModelPostings, units, || {
                self.count_postings_impl(out, u32::MAX);
            });
            return;
        }
        let units = self.total_elements() as u64;
        record_kernel_cost(obs::Site::CostModelElements, units, || {
            scratch.ensure(self.collection.universe());
            for id in self.bits.iter() {
                for e in self.collection.set(id).iter() {
                    let slot = &mut scratch.counts[e.0 as usize];
                    if *slot == 0 {
                        scratch.touched.push(e);
                    }
                    *slot += 1;
                }
            }
            out.reserve(scratch.touched.len());
            for &e in &scratch.touched {
                out.push(EntityCount {
                    entity: e,
                    count: scratch.counts[e.0 as usize],
                });
                scratch.counts[e.0 as usize] = 0;
            }
            scratch.touched.clear();
        });
    }

    /// Like [`Self::count_entities`], but also accumulates each entity's
    /// membership [`Fingerprint`] in the same pass. Clears `out` first;
    /// deterministic order as documented on [`Self::count_entities`].
    pub fn count_entities_with_fp(&self, scratch: &mut CountScratch, out: &mut Vec<EntityStats>) {
        let _span = obs::span(obs::Site::Count);
        if self.use_postings(2) {
            let units = self.collection.postings().scan_cost();
            record_kernel_cost(obs::Site::CostModelPostings, units, || {
                self.count_with_fp_postings_impl(out, u32::MAX);
            });
        } else {
            let units = self.total_elements() as u64;
            record_kernel_cost(obs::Site::CostModelElements, units, || {
                self.count_with_fp_elements_impl(scratch, out, u32::MAX);
            });
        }
    }

    /// Informative entities (present in ≥ 1 but not all member sets, §3)
    /// with their counts and membership fingerprints, computed in one
    /// pass. Clears `out` first; deterministic order as documented on
    /// [`Self::count_entities`] — callers that need a specific order
    /// re-sort by a total key.
    pub fn informative_with_fp(&self, scratch: &mut CountScratch, out: &mut Vec<EntityStats>) {
        let _span = obs::span(obs::Site::Count);
        let below = self.len;
        if self.use_postings(2) {
            let units = self.collection.postings().scan_cost();
            record_kernel_cost(obs::Site::CostModelPostings, units, || {
                self.count_with_fp_postings_impl(out, below);
            });
        } else {
            let units = self.total_elements() as u64;
            record_kernel_cost(obs::Site::CostModelElements, units, || {
                self.count_with_fp_elements_impl(scratch, out, below);
            });
        }
    }

    /// The element-pass reference implementation of
    /// [`Self::count_entities_with_fp`]: walks every member of every set in
    /// the view, accumulating counts and digests in entity-indexed scratch.
    /// Results in first-touched order. Public so property tests and benches
    /// can pin the postings sweep against it.
    pub fn count_entities_with_fp_elements(
        &self,
        scratch: &mut CountScratch,
        out: &mut Vec<EntityStats>,
    ) {
        self.count_with_fp_elements_impl(scratch, out, u32::MAX);
    }

    /// The postings-sweep implementation of
    /// [`Self::count_entities_with_fp`]: intersects each occurring entity's
    /// postings with the view bitmap (word-parallel popcounts for dense
    /// entities, short-list probes for sparse ones). Results in entity-id
    /// order. Public so property tests and benches can compare
    /// representations.
    pub fn count_entities_with_fp_postings(&self, out: &mut Vec<EntityStats>) {
        self.count_with_fp_postings_impl(out, u32::MAX);
    }

    /// Decides representation for one counting pass: the postings sweep
    /// costs `scan_cost` probes over the whole collection plus (for the
    /// fingerprint variants) one digest add per view member, while the
    /// element pass costs one scattered add per view member. Sweep when the
    /// view's member count exceeds `factor ×` the sweep's fixed cost.
    fn use_postings(&self, factor: u64) -> bool {
        let scan = self.collection.postings().scan_cost();
        scan > 0 && self.total_elements() as u64 > scan.saturating_mul(factor)
    }

    /// The counting-dispatch decision for one pass, without running it:
    /// which kernel the internal `use_postings` gate would pick under `factor` and
    /// the two cost-model inputs it compared. Pure — provenance capture
    /// and tests read the dispatcher's mind through this without
    /// perturbing any counter or cache.
    pub fn dispatch_preview(&self, factor: u64) -> DispatchPreview {
        let scan_cost = self.collection.postings().scan_cost();
        let total_elements = self.total_elements() as u64;
        DispatchPreview {
            use_postings: scan_cost > 0 && total_elements > scan_cost.saturating_mul(factor),
            total_elements,
            scan_cost,
            factor,
        }
    }

    fn count_with_fp_elements_impl(
        &self,
        scratch: &mut CountScratch,
        out: &mut Vec<EntityStats>,
        below: u32,
    ) {
        out.clear();
        scratch.ensure(self.collection.universe());
        for id in self.bits.iter() {
            let h = self.collection.set_fp(id);
            for e in self.collection.set(id).iter() {
                let slot = &mut scratch.counts[e.0 as usize];
                if *slot == 0 {
                    scratch.touched.push(e);
                    scratch.fps[e.0 as usize] = h;
                } else {
                    scratch.fps[e.0 as usize] += h;
                }
                *slot += 1;
            }
        }
        out.reserve(scratch.touched.len());
        for &e in &scratch.touched {
            let count = scratch.counts[e.0 as usize];
            scratch.counts[e.0 as usize] = 0;
            if count < below {
                out.push(EntityStats {
                    entity: e,
                    count,
                    fp: scratch.fps[e.0 as usize],
                });
            }
        }
        scratch.touched.clear();
    }

    fn count_with_fp_postings_impl(&self, out: &mut Vec<EntityStats>, below: u32) {
        out.clear();
        let c = self.collection;
        let view_words = self.bits.words();
        for &e in c.occurring_entities() {
            let mut count = 0u32;
            let mut fp = Fingerprint::ZERO;
            match c.postings().dense(e) {
                Some(bm) => {
                    for (wi, (a, b)) in view_words.iter().zip(bm.words()).enumerate() {
                        let mut w = a & b;
                        count += w.count_ones();
                        while w != 0 {
                            let id = SetId(wi as u32 * 64 + w.trailing_zeros());
                            fp += c.set_fp(id);
                            w &= w - 1;
                        }
                    }
                }
                None => {
                    for &id in c.sets_containing(e) {
                        if self.bits.contains(id) {
                            count += 1;
                            fp += c.set_fp(id);
                        }
                    }
                }
            }
            if count > 0 && count < below {
                out.push(EntityStats {
                    entity: e,
                    count,
                    fp,
                });
            }
        }
    }

    fn count_postings_impl(&self, out: &mut Vec<EntityCount>, below: u32) {
        let c = self.collection;
        for &e in c.occurring_entities() {
            let count = match c.postings().dense(e) {
                Some(bm) => self.bits.intersection_len(bm) as u32,
                None => c
                    .sets_containing(e)
                    .iter()
                    .filter(|&&id| self.bits.contains(id))
                    .count() as u32,
            };
            if count > 0 && count < below {
                out.push(EntityCount { entity: e, count });
            }
        }
    }

    /// The membership fingerprint of `e` within this view — the digest of
    /// the member sets containing it, equal to the yes side of
    /// `partition(e)` (and to the `fp` field a fingerprint counting pass
    /// reports for `e`). `O(words + |postings ∩ view|)`; the parallel
    /// lookahead uses it to dedup duplicate-partition candidates before
    /// dispatching them to workers.
    pub fn membership_fp(&self, e: EntityId) -> Fingerprint {
        self.membership_stat(e).1
    }

    /// [`Self::membership_fp`] plus the member count in the same pass —
    /// `(|C⁺|, fingerprint(C⁺))` of `partition(e)`'s yes side. The plan
    /// cache uses this to derive both children's `(fingerprint, len)` keys
    /// without partitioning (the no side follows by subtraction).
    pub fn membership_stat(&self, e: EntityId) -> (u32, Fingerprint) {
        let c = self.collection;
        let mut fp = Fingerprint::ZERO;
        let mut count = 0u32;
        match c.postings().dense(e) {
            Some(bm) => {
                for (wi, (a, b)) in self.bits.words().iter().zip(bm.words()).enumerate() {
                    let mut w = a & b;
                    count += w.count_ones();
                    while w != 0 {
                        fp += c.set_fp(SetId(wi as u32 * 64 + w.trailing_zeros()));
                        w &= w - 1;
                    }
                }
            }
            None => {
                for &id in c.sets_containing(e) {
                    if self.bits.contains(id) {
                        fp += c.set_fp(id);
                        count += 1;
                    }
                }
            }
        }
        (count, fp)
    }

    /// Informative entities: present in at least one member set but not in
    /// all (§3). Sorted by entity id for determinism.
    pub fn informative_entities(&self, scratch: &mut CountScratch) -> Vec<EntityCount> {
        let mut out = Vec::new();
        self.informative_into(scratch, &mut out);
        out.sort_unstable_by_key(|ec| ec.entity);
        out
    }

    /// Informative entities into a reusable buffer (cleared first), in the
    /// deterministic order documented on [`Self::count_entities`] — the
    /// allocation-free variant of [`Self::informative_entities`] for
    /// argmin-style callers whose final ranking key is total anyway.
    pub fn informative_into(&self, scratch: &mut CountScratch, out: &mut Vec<EntityCount>) {
        out.clear();
        let n = self.len;
        if self.use_postings(1) {
            let units = self.collection.postings().scan_cost();
            record_kernel_cost(obs::Site::CostModelPostings, units, || {
                self.count_postings_impl(out, n);
            });
            return;
        }
        let units = self.total_elements() as u64;
        record_kernel_cost(obs::Site::CostModelElements, units, || {
            scratch.ensure(self.collection.universe());
            for id in self.bits.iter() {
                for e in self.collection.set(id).iter() {
                    let slot = &mut scratch.counts[e.0 as usize];
                    if *slot == 0 {
                        scratch.touched.push(e);
                    }
                    *slot += 1;
                }
            }
            out.reserve(scratch.touched.len());
            for &e in &scratch.touched {
                let count = scratch.counts[e.0 as usize];
                scratch.counts[e.0 as usize] = 0;
                if count < n {
                    out.push(EntityCount { entity: e, count });
                }
            }
            scratch.touched.clear();
        });
    }

    /// Informative entities with counts, membership digests, **and** prior
    /// mass, in one element pass (clears `out` first; first-touched order —
    /// every weighted ranking key is total, so consumers are
    /// order-independent). Weighted selection always uses the element pass:
    /// the postings sweep has no per-set weight hook, and with a total key
    /// the two orders select identically anyway.
    pub fn informative_weighted(
        &self,
        scratch: &mut CountScratch,
        out: &mut Vec<WeightedEntityStats>,
        weights: &WeightTable,
    ) {
        out.clear();
        let n = self.len;
        scratch.ensure(self.collection.universe());
        for id in self.bits.iter() {
            let h = self.collection.set_fp(id);
            let w = weights.weight(id);
            for e in self.collection.set(id).iter() {
                let slot = &mut scratch.counts[e.0 as usize];
                if *slot == 0 {
                    scratch.touched.push(e);
                    scratch.fps[e.0 as usize] = h;
                    scratch.wsums[e.0 as usize] = w;
                } else {
                    scratch.fps[e.0 as usize] += h;
                    scratch.wsums[e.0 as usize] += w;
                }
                *slot += 1;
            }
        }
        out.reserve(scratch.touched.len());
        for &e in &scratch.touched {
            let count = scratch.counts[e.0 as usize];
            scratch.counts[e.0 as usize] = 0;
            if count < n {
                out.push(WeightedEntityStats {
                    entity: e,
                    count,
                    fp: scratch.fps[e.0 as usize],
                    wsum: scratch.wsums[e.0 as usize],
                });
            }
        }
        scratch.touched.clear();
    }

    /// Summed prior weight of the view's member sets (`W(C)`), without
    /// materializing the id vector.
    pub fn total_weight(&self, weights: &WeightTable) -> u64 {
        self.bits.iter().map(|id| weights.weight(id)).sum()
    }

    /// Splits the view on entity `e`: `(C⁺, C⁻)` where `C⁺` holds the sets
    /// containing `e`.
    pub fn partition(&self, e: EntityId) -> (SubCollection<'c>, SubCollection<'c>) {
        self.partition_into(e, SubStorage::default(), SubStorage::default())
    }

    /// [`Self::partition`] into caller-provided storage (cleared first), so
    /// steady-state recursion performs no heap allocation: recover the
    /// buffers afterwards with [`Self::into_storage`].
    ///
    /// Kernel selection: entities with a dense postings bitmap split by one
    /// `AND`/`ANDNOT` pass over the words; entities below the dense
    /// threshold copy the parent's words and clear the bits named by their
    /// short posting list. Neither path materializes the children's id
    /// vectors — the yes-side count and fingerprint are accumulated from
    /// the result words and the no side's are derived by subtraction from
    /// the parent's. All paths (including the
    /// [`Self::partition_into_merge`] reference) produce identical
    /// children.
    pub fn partition_into(
        &self,
        e: EntityId,
        mut yes: SubStorage,
        mut no: SubStorage,
    ) -> (SubCollection<'c>, SubCollection<'c>) {
        let _span = obs::span(obs::Site::Partition);
        let c = self.collection;
        yes.ids.clear();
        no.ids.clear();
        let mut yes_fp = Fingerprint::ZERO;
        let mut yes_count = 0u32;
        let mut yes_elems = 0u64;
        if let Some(bm) = c.postings().dense(e) {
            yes.bits.reset(c.len());
            no.bits.reset(c.len());
            let yes_words = yes.bits.words_mut();
            let no_words = no.bits.words_mut();
            let view_words = self.bits.words();
            let post_words = bm.words();
            for wi in 0..view_words.len() {
                let a = view_words[wi];
                let b = post_words[wi];
                let mut yw = a & b;
                yes_words[wi] = yw;
                no_words[wi] = a & !b;
                yes_count += yw.count_ones();
                while yw != 0 {
                    let id = SetId(wi as u32 * 64 + yw.trailing_zeros());
                    yes_fp += c.set_fp(id);
                    yes_elems += c.set_size(id) as u64;
                    yw &= yw - 1;
                }
            }
        } else {
            // Sparse entity: the no side starts as the parent and loses the
            // few member sets on the short posting list.
            yes.bits.reset(c.len());
            no.bits.copy_words_from(&self.bits);
            for &id in c.sets_containing(e) {
                if self.bits.contains(id) {
                    yes.bits.insert(id);
                    no.bits.remove(id);
                    yes_fp += c.set_fp(id);
                    yes_elems += c.set_size(id) as u64;
                    yes_count += 1;
                }
            }
        }
        let no_fp = self.fp - yes_fp;
        let no_count = self.len - yes_count;
        let no_elems = self.elements - yes_elems;
        (
            SubCollection::from_bits_unchecked(c, yes.bits, yes_count, yes_elems, yes_fp),
            SubCollection::from_bits_unchecked(c, no.bits, no_count, no_elems, no_fp),
        )
    }

    /// The id-vector reference kernel: a sorted merge of the view's
    /// (materialized) ids against the entity's posting list,
    /// `O(|C| + |sets containing e|)`, producing children with both
    /// representations filled. Property tests and benches pin the bitmap
    /// kernels of [`Self::partition_into`] against it on every entity.
    pub fn partition_into_merge(
        &self,
        e: EntityId,
        mut yes: SubStorage,
        mut no: SubStorage,
    ) -> (SubCollection<'c>, SubCollection<'c>) {
        let c = self.collection;
        yes.ids.clear();
        no.ids.clear();
        yes.bits.reset(c.len());
        no.bits.reset(c.len());
        let list = c.sets_containing(e);
        let mut yes_fp = Fingerprint::ZERO;
        let mut li = 0usize;
        for &id in self.ids() {
            while li < list.len() && list[li] < id {
                li += 1;
            }
            if li < list.len() && list[li] == id {
                yes_fp += c.set_fp(id);
                yes.ids.push(id);
                yes.bits.insert(id);
            } else {
                no.ids.push(id);
                no.bits.insert(id);
            }
        }
        let no_fp = self.fp - yes_fp;
        (
            SubCollection::from_filled(c, yes.bits, yes.ids, yes_fp),
            SubCollection::from_filled(c, no.bits, no.ids, no_fp),
        )
    }

    /// Retains only the member sets for which `keep` returns true.
    pub fn filter(&self, mut keep: impl FnMut(SetId) -> bool) -> SubCollection<'c> {
        SubCollection::from_sorted_unchecked(
            self.collection,
            self.bits.iter().filter(|&id| keep(id)).collect(),
        )
    }

    /// Total number of elements across member sets (the work unit of one
    /// counting pass — also the quantity the counting dispatch compares
    /// against the postings sweep cost). Maintained incrementally through
    /// splits, so this is a field read.
    #[inline]
    pub fn total_elements(&self) -> usize {
        self.elements as usize
    }
}

/// Fingerprint of a sorted id slice (fold of per-id digests via the
/// collection's lookup table).
fn fp_of_ids(collection: &Collection, ids: &[SetId]) -> Fingerprint {
    ids.iter().map(|&id| collection.set_fp(id)).sum()
}

impl std::fmt::Debug for SubCollection<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SubCollection({} sets)", self.len)
    }
}

/// Reusable counting buffer: entity-indexed counters (plus membership
/// fingerprint accumulators) and a touched list so reset is proportional to
/// the entities seen, not the universe.
#[derive(Default)]
pub struct CountScratch {
    counts: Vec<u32>,
    fps: Vec<Fingerprint>,
    wsums: Vec<u64>,
    touched: Vec<EntityId>,
}

impl CountScratch {
    /// Fresh scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, universe: u32) {
        if self.counts.len() < universe as usize {
            self.counts.resize(universe as usize, 0);
            self.fps.resize(universe as usize, Fingerprint::ZERO);
            self.wsums.resize(universe as usize, 0);
        }
        debug_assert!(self.touched.is_empty(), "scratch not reset");
    }
}

/// One ranked selection candidate (an informative entity plus the sort keys
/// and membership digest the lookahead loops need).
#[derive(Copy, Clone, Debug)]
pub struct Candidate {
    /// Primary ranking score (`LB₁` for k-LP, 0 for the optimal solver).
    pub score: Cost,
    /// Partition imbalance tie-break.
    pub imbalance: u64,
    /// The candidate entity.
    pub entity: EntityId,
    /// Yes-side size `|C⁺|`.
    pub n1: u64,
    /// Membership digest (yes-side fingerprint) for duplicate-partition
    /// dedup. The optimal solver fills it from the fingerprint counting
    /// pass (deduping before any split); the k-LP loops leave it zero and
    /// dedup on the digest their bitmap split computes as a byproduct.
    pub fp: Fingerprint,
}

/// Reusable buffers for one recursion level of a lookahead search.
#[derive(Default)]
pub struct LevelScratch {
    /// Counting-pass output (informative entities with fingerprints).
    pub stats: Vec<EntityStats>,
    /// Fingerprint-free counting output for the `k ≤ 1` base case, which
    /// never partitions and therefore needs no membership digests — the
    /// count-only postings sweep is pure popcounts.
    pub ecounts: Vec<EntityCount>,
    /// Weighted counting output (§6 prior-weighted selection paths).
    pub wstats: Vec<WeightedEntityStats>,
    /// Ranked candidate list.
    pub cand: Vec<Candidate>,
    /// Storage for the yes side of a split (recycled via
    /// [`SubCollection::partition_into`] / [`SubCollection::into_storage`]).
    pub yes: SubStorage,
    /// Storage for the no side of a split.
    pub no: SubStorage,
    /// Seen-partition digests for duplicate-candidate dedup.
    pub seen: FxHashSet<(Fingerprint, u64)>,
}

/// Depth-indexed arena of [`LevelScratch`] buffers plus the shared counting
/// scratch — the state that makes the k-LP / gain-k / optimal recursions
/// allocation-free in steady state. Levels are taken by value for the
/// duration of one recursion frame (sibling frames at the same depth run
/// sequentially, so one buffer set per depth suffices) and put back before
/// the frame returns.
#[derive(Default)]
pub struct LookaheadScratch {
    /// Shared counting buffers (entity-indexed, depth-independent).
    pub counts: CountScratch,
    levels: Vec<LevelScratch>,
}

impl LookaheadScratch {
    /// Fresh arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the buffer set for recursion depth `depth` (growing the arena
    /// on demand). The returned buffers are cleared of per-frame state
    /// (candidates, stats, seen digests); the storage buffers keep their
    /// capacity.
    pub fn take_level(&mut self, depth: usize) -> LevelScratch {
        if depth >= self.levels.len() {
            self.levels.resize_with(depth + 1, LevelScratch::default);
        }
        let mut level = std::mem::take(&mut self.levels[depth]);
        level.stats.clear();
        level.ecounts.clear();
        level.wstats.clear();
        level.cand.clear();
        level.seen.clear();
        level
    }

    /// Returns a buffer set taken with [`Self::take_level`] so the capacity
    /// is reused by the next frame at this depth.
    pub fn put_level(&mut self, depth: usize, level: LevelScratch) {
        self.levels[depth] = level;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::Collection;

    fn figure1() -> Collection {
        Collection::from_raw_sets(vec![
            vec![0, 1, 2, 3],
            vec![0, 3, 4],
            vec![0, 1, 2, 3, 5],
            vec![0, 1, 2, 6, 7],
            vec![0, 1, 7, 8],
            vec![0, 1, 9, 10],
            vec![0, 1, 6],
        ])
        .unwrap()
    }

    #[test]
    fn full_view_covers_all() {
        let c = figure1();
        let v = c.full_view();
        assert_eq!(v.len(), 7);
        assert_eq!(v.total_elements(), 4 + 3 + 5 + 5 + 4 + 4 + 3);
        assert_eq!(v.bitmap().iter().collect::<Vec<_>>(), v.ids());
        assert_eq!(v.first_id(), Some(SetId(0)));
    }

    #[test]
    fn counts_match_inverted_index() {
        let c = figure1();
        let v = c.full_view();
        let mut scratch = CountScratch::new();
        let mut counts = Vec::new();
        v.count_entities(&mut scratch, &mut counts);
        for ec in &counts {
            assert_eq!(
                ec.count as usize,
                c.sets_containing(ec.entity).len(),
                "entity {}",
                ec.entity
            );
        }
        // Scratch must be fully reset for reuse.
        let mut counts2 = Vec::new();
        v.count_entities(&mut scratch, &mut counts2);
        assert_eq!(counts, counts2);
    }

    #[test]
    fn informative_excludes_universal_entity() {
        let c = figure1();
        let v = c.full_view();
        let mut scratch = CountScratch::new();
        let inf = v.informative_entities(&mut scratch);
        // Entity a=0 is in all seven sets → uninformative (Example 3.1).
        assert!(inf.iter().all(|ec| ec.entity != EntityId(0)));
        // b..k are all informative: 10 of them.
        assert_eq!(inf.len(), 10);
    }

    #[test]
    fn partition_on_d_matches_paper() {
        // Fig 2a: d splits into {S1,S2,S3} and {S4..S7}.
        let c = figure1();
        let (yes, no) = c.full_view().partition(EntityId(3));
        assert_eq!(yes.ids(), &[SetId(0), SetId(1), SetId(2)]);
        assert_eq!(no.ids(), &[SetId(3), SetId(4), SetId(5), SetId(6)]);
        assert_eq!(yes.bitmap().iter().collect::<Vec<_>>(), yes.ids());
        assert_eq!(no.bitmap().iter().collect::<Vec<_>>(), no.ids());
        assert_eq!(yes.len(), 3);
        assert_eq!(no.len(), 4);
        assert_eq!(no.first_id(), Some(SetId(3)));
    }

    #[test]
    fn partition_of_subview() {
        let c = figure1();
        let v = SubCollection::from_ids(&c, vec![SetId(0), SetId(3), SetId(4)]);
        // g=6 is in S4 and S7; within this view only S4.
        let (yes, no) = v.partition(EntityId(6));
        assert_eq!(yes.ids(), &[SetId(3)]);
        assert_eq!(no.ids(), &[SetId(0), SetId(4)]);
    }

    #[test]
    fn partition_on_absent_entity() {
        let c = figure1();
        let (yes, no) = c.full_view().partition(EntityId(999));
        assert!(yes.is_empty());
        assert_eq!(no.len(), 7);
    }

    #[test]
    fn all_partition_kernels_agree() {
        // The dense word path, the sparse copy-and-clear path, and the
        // merge reference must produce identical children (ids, bitmap,
        // length, fingerprints) for every entity on dense and tiny views.
        let c = figure1();
        let views = [
            c.full_view(),
            SubCollection::from_ids(&c, vec![SetId(1), SetId(4)]),
            SubCollection::from_ids(&c, vec![]),
        ];
        for v in &views {
            for e in 0..=c.universe() {
                let e = EntityId(e);
                let (y1, n1) = v.partition(e);
                let (y2, n2) =
                    v.partition_into_merge(e, SubStorage::default(), SubStorage::default());
                assert_eq!(y1.len(), y2.len(), "yes len, entity {e}");
                assert_eq!(y1.ids(), y2.ids(), "yes ids, entity {e}");
                assert_eq!(n1.ids(), n2.ids(), "no ids, entity {e}");
                assert_eq!(y1.fingerprint(), y2.fingerprint());
                assert_eq!(n1.fingerprint(), n2.fingerprint());
                assert_eq!(y1.bitmap(), y2.bitmap());
                assert_eq!(n1.bitmap(), n2.bitmap());
            }
        }
    }

    #[test]
    fn counting_kernels_agree() {
        let c = figure1();
        let mut scratch = CountScratch::new();
        let views = [
            c.full_view(),
            SubCollection::from_ids(&c, vec![SetId(0), SetId(2), SetId(5)]),
        ];
        for v in &views {
            let mut elements = Vec::new();
            v.count_entities_with_fp_elements(&mut scratch, &mut elements);
            elements.sort_unstable_by_key(|s| s.entity);
            let mut postings = Vec::new();
            v.count_entities_with_fp_postings(&mut postings);
            assert_eq!(elements, postings, "view of {} sets", v.len());
        }
    }

    #[test]
    fn weighted_counts_agree_with_unweighted_under_uniform() {
        let c = figure1();
        let mut scratch = CountScratch::new();
        let weights = WeightTable::uniform(7);
        let views = [
            c.full_view(),
            SubCollection::from_ids(&c, vec![SetId(0), SetId(2), SetId(5)]),
        ];
        for v in &views {
            let mut plain = Vec::new();
            v.informative_with_fp(&mut scratch, &mut plain);
            plain.sort_unstable_by_key(|s| s.entity);
            let mut weighted = Vec::new();
            v.informative_weighted(&mut scratch, &mut weighted, &weights);
            weighted.sort_unstable_by_key(|s| s.entity);
            assert_eq!(plain.len(), weighted.len());
            for (p, w) in plain.iter().zip(&weighted) {
                assert_eq!((p.entity, p.count, p.fp), (w.entity, w.count, w.fp));
                assert_eq!(w.wsum, u64::from(w.count), "uniform mass = count");
            }
            assert_eq!(v.total_weight(&weights), v.len() as u64);
        }
    }

    #[test]
    fn weighted_counts_track_skewed_mass() {
        let c = figure1();
        let mut scratch = CountScratch::new();
        // S2 = {a,d,e} carries weight 10, the rest 1.
        let raw = [1u64, 10, 1, 1, 1, 1, 1];
        let weights = WeightTable::new(&raw).unwrap();
        let v = c.full_view();
        assert_eq!(v.total_weight(&weights), 16);
        let mut out = Vec::new();
        v.informative_weighted(&mut scratch, &mut out, &weights);
        let e4 = out.iter().find(|s| s.entity == EntityId(4)).unwrap();
        assert_eq!((e4.count, e4.wsum), (1, 10), "e only occurs in S2");
        let d = out.iter().find(|s| s.entity == EntityId(3)).unwrap();
        assert_eq!((d.count, d.wsum), (3, 12), "d in S1,S2,S3");
        let (yes, _) = v.partition(EntityId(3));
        assert_eq!(yes.total_weight(&weights), 12);
    }

    #[test]
    fn from_ids_sorts_and_dedups() {
        let c = figure1();
        let v = SubCollection::from_ids(&c, vec![SetId(4), SetId(1), SetId(4)]);
        assert_eq!(v.ids(), &[SetId(1), SetId(4)]);
    }

    #[test]
    fn filter_keeps_order() {
        let c = figure1();
        let v = c.full_view().filter(|id| id.0 % 2 == 0);
        assert_eq!(v.ids(), &[SetId(0), SetId(2), SetId(4), SetId(6)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_ids_checks_range() {
        let c = figure1();
        SubCollection::from_ids(&c, vec![SetId(7)]);
    }

    #[test]
    fn informative_on_two_unique_sets_is_nonempty() {
        // Any two distinct sets must expose at least one informative entity
        // (their symmetric difference) — the invariant that guarantees tree
        // construction terminates.
        let c = Collection::from_raw_sets(vec![vec![1, 2], vec![1, 3]]).unwrap();
        let mut scratch = CountScratch::new();
        let inf = c.full_view().informative_entities(&mut scratch);
        assert!(!inf.is_empty());
    }

    #[test]
    fn fingerprints_agree_across_construction_paths() {
        let c = figure1();
        let full = c.full_view();
        // partition sides, from_ids, and filter must all agree on the
        // digest of the same id set.
        let (yes, no) = full.partition(EntityId(3));
        assert_eq!(
            yes.fingerprint(),
            SubCollection::from_ids(&c, yes.ids().to_vec()).fingerprint()
        );
        assert_eq!(
            no.fingerprint(),
            full.filter(|id| !yes.ids().contains(&id)).fingerprint()
        );
        // Incremental maintenance: parent = yes + no.
        assert_eq!(full.fingerprint(), yes.fingerprint() + no.fingerprint());
        // Distinct id sets ⇒ distinct digests (the memo-soundness property):
        // all 2⁷ subsets of Figure 1 are pairwise distinct.
        let mut seen = std::collections::HashSet::new();
        for mask in 0u32..128 {
            let ids: Vec<SetId> = (0..7).filter(|b| mask >> b & 1 == 1).map(SetId).collect();
            let fp = SubCollection::from_ids(&c, ids).fingerprint();
            assert!(seen.insert(fp), "fingerprint collision at mask {mask}");
        }
    }

    #[test]
    fn membership_fp_equals_yes_side_fp() {
        let c = figure1();
        let v = c.full_view();
        let mut scratch = CountScratch::new();
        let mut stats = Vec::new();
        v.count_entities_with_fp(&mut scratch, &mut stats);
        assert!(!stats.is_empty());
        for s in &stats {
            let (yes, _) = v.partition(s.entity);
            assert_eq!(s.fp, yes.fingerprint(), "entity {}", s.entity);
            assert_eq!(s.count as usize, yes.len());
            assert_eq!(v.membership_stat(s.entity), (s.count, s.fp));
        }
        // The informative variant filters exactly the universal entities.
        let mut inf = Vec::new();
        v.informative_with_fp(&mut scratch, &mut inf);
        assert_eq!(inf.len(), 10);
        assert!(inf.iter().all(|s| s.entity != EntityId(0)));
        // Buffers are cleared, not appended to, on reuse.
        let before = inf.clone();
        v.informative_with_fp(&mut scratch, &mut inf);
        assert_eq!(inf, before);
    }

    #[test]
    fn membership_fp_is_view_relative() {
        // d=3 lives in S1,S2,S3; within a subview its membership digest only
        // covers the subview's member sets.
        let c = figure1();
        let v = SubCollection::from_ids(&c, vec![SetId(0), SetId(3)]);
        let mut scratch = CountScratch::new();
        let mut stats = Vec::new();
        v.count_entities_with_fp(&mut scratch, &mut stats);
        let d = stats
            .iter()
            .find(|s| s.entity == EntityId(3))
            .expect("d occurs");
        assert_eq!(d.count, 1);
        assert_eq!(d.fp, fp_of_set(SetId(0)));
    }

    #[test]
    fn partition_into_recycles_storage() {
        let c = figure1();
        let v = c.full_view();
        // Pre-dirtied storage must be cleared and reused; children keep the
        // bitmap words unmaterialized until someone asks for ids.
        let yes_buf = SubStorage {
            ids: vec![SetId(99); 64],
            bits: IdBitmap::full(512),
        };
        let (yes, no) = v.partition_into(EntityId(3), yes_buf, SubStorage::default());
        assert_eq!(yes.len(), 3);
        assert_eq!(no.len(), 4);
        assert_eq!(yes.ids(), &[SetId(0), SetId(1), SetId(2)]);
        let reclaimed = yes.into_storage();
        assert_eq!(reclaimed.bits.words().len(), 1, "bitmap resized to fit");
        // An unmaterialized child hands back an empty id buffer.
        assert!(no.into_storage().ids.is_empty());
    }

    #[test]
    fn lazy_ids_materialize_once_and_round_trip() {
        let c = figure1();
        let (yes, no) = c.full_view().partition(EntityId(2));
        // into_ids on an unmaterialized view decodes from the bitmap.
        assert_eq!(
            no.clone().into_ids(),
            no.bitmap().iter().collect::<Vec<_>>()
        );
        // ids() caches: two calls, same slice content.
        let first = yes.ids().to_vec();
        assert_eq!(yes.ids(), first.as_slice());
        // A materialized view hands its vector back through into_storage.
        let storage = yes.into_storage();
        assert_eq!(storage.ids, first);
    }

    #[test]
    fn lookahead_scratch_levels_retain_capacity() {
        let mut scratch = LookaheadScratch::new();
        let mut level = scratch.take_level(2);
        level.yes.bits.reset(512);
        let words = level.yes.bits.words().len();
        level.cand.push(Candidate {
            score: 1,
            imbalance: 0,
            entity: EntityId(0),
            n1: 1,
            fp: Fingerprint::ZERO,
        });
        scratch.put_level(2, level);
        let level = scratch.take_level(2);
        assert!(level.cand.is_empty(), "per-frame state cleared");
        assert_eq!(level.yes.bits.words().len(), words, "bitmap words reused");
    }
}
