//! Lightweight views over a subset of a collection's sets.
//!
//! Every step of the search — tree construction, lookahead recursion,
//! interactive filtering — operates on some subset of the sets. A
//! [`SubCollection`] is a borrowed collection plus a sorted vector of set
//! ids, cheap to split and clone, and carries a 128-bit content
//! [`Fingerprint`] maintained incrementally at split time so lookahead
//! memos can key on `(fingerprint, len)` instead of boxed id vectors.
//!
//! Entity counting is the innermost hot loop (it runs at every node of every
//! lookahead), so it writes into a reusable [`CountScratch`] buffer indexed
//! by entity id instead of allocating a hash map per call; the buffer resets
//! itself through a touched-list in `O(distinct entities)`. The fingerprinted
//! variant additionally accumulates each entity's *membership* digest — the
//! fingerprint of the member sets containing it, which is exactly the
//! yes-side fingerprint of `partition(entity)` — in the same pass, letting
//! callers drop duplicate-partition candidates without ever partitioning.
//!
//! [`LookaheadScratch`] completes the allocation-free recursion story:
//! depth-indexed reusable candidate/stat/id buffers that [`crate::lookahead`]
//! and [`crate::optimal`] thread through their recursion together with the
//! buffer-recycling [`SubCollection::partition_into`].

use crate::collection::Collection;
use crate::cost::Cost;
use crate::entity::{EntityId, SetId};
use setdisc_util::{Fingerprint, FxHashSet};

/// Content digest of one set id (the unit [`SubCollection`] fingerprints
/// sum over).
#[inline]
pub(crate) fn fp_of_set(id: SetId) -> Fingerprint {
    Fingerprint::of(id.0 as u64)
}

/// A view over a sorted subset of sets in a [`Collection`].
#[derive(Clone)]
pub struct SubCollection<'c> {
    collection: &'c Collection,
    ids: Vec<SetId>,
    fp: Fingerprint,
}

/// Occurrence statistics for one entity within a sub-collection.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EntityCount {
    /// The entity.
    pub entity: EntityId,
    /// Number of sets in the sub-collection containing it (`|C⁺|`).
    pub count: u32,
}

/// Occurrence statistics plus membership digest for one entity.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EntityStats {
    /// The entity.
    pub entity: EntityId,
    /// Number of sets in the sub-collection containing it (`|C⁺|`).
    pub count: u32,
    /// Fingerprint of the member sets containing the entity — equal to the
    /// fingerprint of the yes side of `partition(entity)`. Entities with
    /// equal membership digests induce the same partition (up to the
    /// negligible fingerprint collision odds), so candidates can be
    /// deduplicated before partitioning.
    pub fp: Fingerprint,
}

impl<'c> SubCollection<'c> {
    /// View over the entire collection.
    pub fn full(collection: &'c Collection) -> Self {
        let ids: Vec<SetId> = (0..collection.len() as u32).map(SetId).collect();
        let fp = fp_of_ids(&ids);
        Self {
            ids,
            fp,
            collection,
        }
    }

    /// View over the given ids. Sorts and deduplicates them; panics on an id
    /// out of range (programmer error, not data error).
    pub fn from_ids(collection: &'c Collection, mut ids: Vec<SetId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        if let Some(last) = ids.last() {
            assert!(
                (last.0 as usize) < collection.len(),
                "set id {last} out of range"
            );
        }
        let fp = fp_of_ids(&ids);
        Self {
            collection,
            ids,
            fp,
        }
    }

    /// Internal constructor for ids that are already sorted and in range.
    pub(crate) fn from_sorted_unchecked(collection: &'c Collection, ids: Vec<SetId>) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        let fp = fp_of_ids(&ids);
        Self {
            collection,
            ids,
            fp,
        }
    }

    /// Internal constructor when the fingerprint of `ids` is already known.
    pub(crate) fn from_parts_unchecked(
        collection: &'c Collection,
        ids: Vec<SetId>,
        fp: Fingerprint,
    ) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        debug_assert_eq!(fp, fp_of_ids(&ids));
        Self {
            collection,
            ids,
            fp,
        }
    }

    /// The underlying collection.
    #[inline]
    pub fn collection(&self) -> &'c Collection {
        self.collection
    }

    /// Sorted ids of the member sets.
    #[inline]
    pub fn ids(&self) -> &[SetId] {
        &self.ids
    }

    /// 128-bit content digest of the id set — the allocation-free identity
    /// the lookahead memos key on (always paired with [`Self::len`]).
    #[inline]
    pub fn fingerprint(&self) -> Fingerprint {
        self.fp
    }

    /// Number of member sets.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the view holds no sets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Recovers the id buffer for reuse (the counterpart of
    /// [`Self::partition_into`]'s buffer recycling).
    #[inline]
    pub fn into_ids(self) -> Vec<SetId> {
        self.ids
    }

    /// Counts, for every entity occurring in the view, how many member sets
    /// contain it. Appends results to `out` in first-touched order
    /// (deterministic); resets `scratch` before returning.
    pub fn count_entities(&self, scratch: &mut CountScratch, out: &mut Vec<EntityCount>) {
        scratch.ensure(self.collection.universe());
        for &id in &self.ids {
            for e in self.collection.set(id).iter() {
                let slot = &mut scratch.counts[e.0 as usize];
                if *slot == 0 {
                    scratch.touched.push(e);
                }
                *slot += 1;
            }
        }
        out.reserve(scratch.touched.len());
        for &e in &scratch.touched {
            out.push(EntityCount {
                entity: e,
                count: scratch.counts[e.0 as usize],
            });
            scratch.counts[e.0 as usize] = 0;
        }
        scratch.touched.clear();
    }

    /// Like [`Self::count_entities`], but also accumulates each entity's
    /// membership [`Fingerprint`] in the same counting pass. Clears `out`
    /// first; results are in first-touched order.
    pub fn count_entities_with_fp(&self, scratch: &mut CountScratch, out: &mut Vec<EntityStats>) {
        self.count_with_fp_impl(scratch, out, u32::MAX);
    }

    /// Informative entities (present in ≥ 1 but not all member sets, §3)
    /// with their counts and membership fingerprints, computed in one
    /// counting pass. Clears `out` first; results are in first-touched
    /// order — callers that need a specific order re-sort by a total key.
    pub fn informative_with_fp(&self, scratch: &mut CountScratch, out: &mut Vec<EntityStats>) {
        self.count_with_fp_impl(scratch, out, self.ids.len() as u32);
    }

    fn count_with_fp_impl(
        &self,
        scratch: &mut CountScratch,
        out: &mut Vec<EntityStats>,
        below: u32,
    ) {
        out.clear();
        scratch.ensure(self.collection.universe());
        for &id in &self.ids {
            let h = fp_of_set(id);
            for e in self.collection.set(id).iter() {
                let slot = &mut scratch.counts[e.0 as usize];
                if *slot == 0 {
                    scratch.touched.push(e);
                    scratch.fps[e.0 as usize] = h;
                } else {
                    scratch.fps[e.0 as usize] += h;
                }
                *slot += 1;
            }
        }
        out.reserve(scratch.touched.len());
        for &e in &scratch.touched {
            let count = scratch.counts[e.0 as usize];
            scratch.counts[e.0 as usize] = 0;
            if count < below {
                out.push(EntityStats {
                    entity: e,
                    count,
                    fp: scratch.fps[e.0 as usize],
                });
            }
        }
        scratch.touched.clear();
    }

    /// Informative entities: present in at least one member set but not in
    /// all (§3). Sorted by entity id for determinism.
    pub fn informative_entities(&self, scratch: &mut CountScratch) -> Vec<EntityCount> {
        let mut out = Vec::new();
        self.informative_into(scratch, &mut out);
        out.sort_unstable_by_key(|ec| ec.entity);
        out
    }

    /// Informative entities into a reusable buffer (cleared first), in
    /// first-touched order — the allocation-free variant of
    /// [`Self::informative_entities`] for argmin-style callers whose final
    /// ranking key is total anyway.
    pub fn informative_into(&self, scratch: &mut CountScratch, out: &mut Vec<EntityCount>) {
        out.clear();
        let n = self.ids.len() as u32;
        scratch.ensure(self.collection.universe());
        for &id in &self.ids {
            for e in self.collection.set(id).iter() {
                let slot = &mut scratch.counts[e.0 as usize];
                if *slot == 0 {
                    scratch.touched.push(e);
                }
                *slot += 1;
            }
        }
        out.reserve(scratch.touched.len());
        for &e in &scratch.touched {
            let count = scratch.counts[e.0 as usize];
            scratch.counts[e.0 as usize] = 0;
            if count < n {
                out.push(EntityCount { entity: e, count });
            }
        }
        scratch.touched.clear();
    }

    /// Splits the view on entity `e`: `(C⁺, C⁻)` where `C⁺` holds the sets
    /// containing `e`. Uses a sorted merge against the inverted index, so the
    /// cost is `O(|C| + |sets containing e|)`.
    pub fn partition(&self, e: EntityId) -> (SubCollection<'c>, SubCollection<'c>) {
        self.partition_into(e, Vec::new(), Vec::new())
    }

    /// [`Self::partition`] into caller-provided id buffers (cleared first),
    /// so steady-state recursion performs no heap allocation: recover the
    /// buffers afterwards with [`Self::into_ids`]. The yes-side fingerprint
    /// is accumulated during the merge and the no side's is derived by
    /// subtraction from the parent's.
    pub fn partition_into(
        &self,
        e: EntityId,
        mut yes_ids: Vec<SetId>,
        mut no_ids: Vec<SetId>,
    ) -> (SubCollection<'c>, SubCollection<'c>) {
        yes_ids.clear();
        no_ids.clear();
        let list = self.collection.sets_containing(e);
        let mut yes_fp = Fingerprint::ZERO;
        let mut li = 0usize;
        for &id in &self.ids {
            while li < list.len() && list[li] < id {
                li += 1;
            }
            if li < list.len() && list[li] == id {
                yes_fp += fp_of_set(id);
                yes_ids.push(id);
            } else {
                no_ids.push(id);
            }
        }
        let no_fp = self.fp - yes_fp;
        (
            SubCollection::from_parts_unchecked(self.collection, yes_ids, yes_fp),
            SubCollection::from_parts_unchecked(self.collection, no_ids, no_fp),
        )
    }

    /// Retains only the member sets for which `keep` returns true.
    pub fn filter(&self, mut keep: impl FnMut(SetId) -> bool) -> SubCollection<'c> {
        SubCollection::from_sorted_unchecked(
            self.collection,
            self.ids.iter().copied().filter(|&id| keep(id)).collect(),
        )
    }

    /// Total number of elements across member sets (the work unit of one
    /// counting pass — useful for complexity assertions in benches).
    pub fn total_elements(&self) -> usize {
        self.ids
            .iter()
            .map(|&id| self.collection.set(id).len())
            .sum()
    }
}

/// Fingerprint of a sorted id slice (fold of per-id digests).
fn fp_of_ids(ids: &[SetId]) -> Fingerprint {
    ids.iter().map(|&id| fp_of_set(id)).sum()
}

impl std::fmt::Debug for SubCollection<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SubCollection({} sets)", self.ids.len())
    }
}

/// Reusable counting buffer: entity-indexed counters (plus membership
/// fingerprint accumulators) and a touched list so reset is proportional to
/// the entities seen, not the universe.
#[derive(Default)]
pub struct CountScratch {
    counts: Vec<u32>,
    fps: Vec<Fingerprint>,
    touched: Vec<EntityId>,
}

impl CountScratch {
    /// Fresh scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, universe: u32) {
        if self.counts.len() < universe as usize {
            self.counts.resize(universe as usize, 0);
            self.fps.resize(universe as usize, Fingerprint::ZERO);
        }
        debug_assert!(self.touched.is_empty(), "scratch not reset");
    }
}

/// One ranked selection candidate (an informative entity plus the sort keys
/// and membership digest the lookahead loops need).
#[derive(Copy, Clone, Debug)]
pub struct Candidate {
    /// Primary ranking score (`LB₁` for k-LP, 0 for the optimal solver).
    pub score: Cost,
    /// Partition imbalance tie-break.
    pub imbalance: u64,
    /// The candidate entity.
    pub entity: EntityId,
    /// Yes-side size `|C⁺|`.
    pub n1: u64,
    /// Membership digest (yes-side fingerprint) for duplicate-partition
    /// dedup *before* partitioning.
    pub fp: Fingerprint,
}

/// Reusable buffers for one recursion level of a lookahead search.
#[derive(Default)]
pub struct LevelScratch {
    /// Counting-pass output (informative entities with fingerprints).
    pub stats: Vec<EntityStats>,
    /// Ranked candidate list.
    pub cand: Vec<Candidate>,
    /// Id buffer for the yes side of a split (recycled via
    /// [`SubCollection::partition_into`] / [`SubCollection::into_ids`]).
    pub yes_ids: Vec<SetId>,
    /// Id buffer for the no side of a split.
    pub no_ids: Vec<SetId>,
    /// Seen-partition digests for duplicate-candidate dedup.
    pub seen: FxHashSet<(Fingerprint, u64)>,
}

/// Depth-indexed arena of [`LevelScratch`] buffers plus the shared counting
/// scratch — the state that makes the k-LP / gain-k / optimal recursions
/// allocation-free in steady state. Levels are taken by value for the
/// duration of one recursion frame (sibling frames at the same depth run
/// sequentially, so one buffer set per depth suffices) and put back before
/// the frame returns.
#[derive(Default)]
pub struct LookaheadScratch {
    /// Shared counting buffers (entity-indexed, depth-independent).
    pub counts: CountScratch,
    levels: Vec<LevelScratch>,
}

impl LookaheadScratch {
    /// Fresh arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the buffer set for recursion depth `depth` (growing the arena
    /// on demand). The returned buffers are cleared of per-frame state
    /// (candidates, stats, seen digests); the id buffers keep their
    /// capacity.
    pub fn take_level(&mut self, depth: usize) -> LevelScratch {
        if depth >= self.levels.len() {
            self.levels.resize_with(depth + 1, LevelScratch::default);
        }
        let mut level = std::mem::take(&mut self.levels[depth]);
        level.stats.clear();
        level.cand.clear();
        level.seen.clear();
        level
    }

    /// Returns a buffer set taken with [`Self::take_level`] so the capacity
    /// is reused by the next frame at this depth.
    pub fn put_level(&mut self, depth: usize, level: LevelScratch) {
        self.levels[depth] = level;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::Collection;

    fn figure1() -> Collection {
        Collection::from_raw_sets(vec![
            vec![0, 1, 2, 3],
            vec![0, 3, 4],
            vec![0, 1, 2, 3, 5],
            vec![0, 1, 2, 6, 7],
            vec![0, 1, 7, 8],
            vec![0, 1, 9, 10],
            vec![0, 1, 6],
        ])
        .unwrap()
    }

    #[test]
    fn full_view_covers_all() {
        let c = figure1();
        let v = c.full_view();
        assert_eq!(v.len(), 7);
        assert_eq!(v.total_elements(), 4 + 3 + 5 + 5 + 4 + 4 + 3);
    }

    #[test]
    fn counts_match_inverted_index() {
        let c = figure1();
        let v = c.full_view();
        let mut scratch = CountScratch::new();
        let mut counts = Vec::new();
        v.count_entities(&mut scratch, &mut counts);
        for ec in &counts {
            assert_eq!(
                ec.count as usize,
                c.sets_containing(ec.entity).len(),
                "entity {}",
                ec.entity
            );
        }
        // Scratch must be fully reset for reuse.
        let mut counts2 = Vec::new();
        v.count_entities(&mut scratch, &mut counts2);
        assert_eq!(counts, counts2);
    }

    #[test]
    fn informative_excludes_universal_entity() {
        let c = figure1();
        let v = c.full_view();
        let mut scratch = CountScratch::new();
        let inf = v.informative_entities(&mut scratch);
        // Entity a=0 is in all seven sets → uninformative (Example 3.1).
        assert!(inf.iter().all(|ec| ec.entity != EntityId(0)));
        // b..k are all informative: 10 of them.
        assert_eq!(inf.len(), 10);
    }

    #[test]
    fn partition_on_d_matches_paper() {
        // Fig 2a: d splits into {S1,S2,S3} and {S4..S7}.
        let c = figure1();
        let (yes, no) = c.full_view().partition(EntityId(3));
        assert_eq!(yes.ids(), &[SetId(0), SetId(1), SetId(2)]);
        assert_eq!(no.ids(), &[SetId(3), SetId(4), SetId(5), SetId(6)]);
    }

    #[test]
    fn partition_of_subview() {
        let c = figure1();
        let v = SubCollection::from_ids(&c, vec![SetId(0), SetId(3), SetId(4)]);
        // g=6 is in S4 and S7; within this view only S4.
        let (yes, no) = v.partition(EntityId(6));
        assert_eq!(yes.ids(), &[SetId(3)]);
        assert_eq!(no.ids(), &[SetId(0), SetId(4)]);
    }

    #[test]
    fn partition_on_absent_entity() {
        let c = figure1();
        let (yes, no) = c.full_view().partition(EntityId(999));
        assert!(yes.is_empty());
        assert_eq!(no.len(), 7);
    }

    #[test]
    fn from_ids_sorts_and_dedups() {
        let c = figure1();
        let v = SubCollection::from_ids(&c, vec![SetId(4), SetId(1), SetId(4)]);
        assert_eq!(v.ids(), &[SetId(1), SetId(4)]);
    }

    #[test]
    fn filter_keeps_order() {
        let c = figure1();
        let v = c.full_view().filter(|id| id.0 % 2 == 0);
        assert_eq!(v.ids(), &[SetId(0), SetId(2), SetId(4), SetId(6)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_ids_checks_range() {
        let c = figure1();
        SubCollection::from_ids(&c, vec![SetId(7)]);
    }

    #[test]
    fn informative_on_two_unique_sets_is_nonempty() {
        // Any two distinct sets must expose at least one informative entity
        // (their symmetric difference) — the invariant that guarantees tree
        // construction terminates.
        let c = Collection::from_raw_sets(vec![vec![1, 2], vec![1, 3]]).unwrap();
        let mut scratch = CountScratch::new();
        let inf = c.full_view().informative_entities(&mut scratch);
        assert!(!inf.is_empty());
    }

    #[test]
    fn fingerprints_agree_across_construction_paths() {
        let c = figure1();
        let full = c.full_view();
        // partition sides, from_ids, and filter must all agree on the
        // digest of the same id set.
        let (yes, no) = full.partition(EntityId(3));
        assert_eq!(
            yes.fingerprint(),
            SubCollection::from_ids(&c, yes.ids().to_vec()).fingerprint()
        );
        assert_eq!(
            no.fingerprint(),
            full.filter(|id| !yes.ids().contains(&id)).fingerprint()
        );
        // Incremental maintenance: parent = yes + no.
        assert_eq!(full.fingerprint(), yes.fingerprint() + no.fingerprint());
        // Distinct id sets ⇒ distinct digests (the memo-soundness property):
        // all 2⁷ subsets of Figure 1 are pairwise distinct.
        let mut seen = std::collections::HashSet::new();
        for mask in 0u32..128 {
            let ids: Vec<SetId> = (0..7).filter(|b| mask >> b & 1 == 1).map(SetId).collect();
            let fp = SubCollection::from_ids(&c, ids).fingerprint();
            assert!(seen.insert(fp), "fingerprint collision at mask {mask}");
        }
    }

    #[test]
    fn membership_fp_equals_yes_side_fp() {
        let c = figure1();
        let v = c.full_view();
        let mut scratch = CountScratch::new();
        let mut stats = Vec::new();
        v.count_entities_with_fp(&mut scratch, &mut stats);
        assert!(!stats.is_empty());
        for s in &stats {
            let (yes, _) = v.partition(s.entity);
            assert_eq!(s.fp, yes.fingerprint(), "entity {}", s.entity);
            assert_eq!(s.count as usize, yes.len());
        }
        // The informative variant filters exactly the universal entities.
        let mut inf = Vec::new();
        v.informative_with_fp(&mut scratch, &mut inf);
        assert_eq!(inf.len(), 10);
        assert!(inf.iter().all(|s| s.entity != EntityId(0)));
        // Buffers are cleared, not appended to, on reuse.
        let before = inf.clone();
        v.informative_with_fp(&mut scratch, &mut inf);
        assert_eq!(inf, before);
    }

    #[test]
    fn membership_fp_is_view_relative() {
        // d=3 lives in S1,S2,S3; within a subview its membership digest only
        // covers the subview's member sets.
        let c = figure1();
        let v = SubCollection::from_ids(&c, vec![SetId(0), SetId(3)]);
        let mut scratch = CountScratch::new();
        let mut stats = Vec::new();
        v.count_entities_with_fp(&mut scratch, &mut stats);
        let d = stats
            .iter()
            .find(|s| s.entity == EntityId(3))
            .expect("d occurs");
        assert_eq!(d.count, 1);
        assert_eq!(d.fp, fp_of_set(SetId(0)));
    }

    #[test]
    fn partition_into_recycles_buffers() {
        let c = figure1();
        let v = c.full_view();
        // Pre-dirtied buffers with excess capacity must be cleared and
        // reused without reallocating.
        let yes_buf = vec![SetId(99); 64];
        let no_buf = vec![SetId(99); 64];
        let yes_cap = yes_buf.capacity();
        let (yes, no) = v.partition_into(EntityId(3), yes_buf, no_buf);
        assert_eq!(yes.ids(), &[SetId(0), SetId(1), SetId(2)]);
        assert_eq!(no.len(), 4);
        let reclaimed = yes.into_ids();
        assert_eq!(reclaimed.capacity(), yes_cap, "buffer capacity retained");
    }

    #[test]
    fn lookahead_scratch_levels_retain_capacity() {
        let mut scratch = LookaheadScratch::new();
        let mut level = scratch.take_level(2);
        level.yes_ids.reserve(100);
        let cap = level.yes_ids.capacity();
        level.cand.push(Candidate {
            score: 1,
            imbalance: 0,
            entity: EntityId(0),
            n1: 1,
            fp: Fingerprint::ZERO,
        });
        scratch.put_level(2, level);
        let level = scratch.take_level(2);
        assert!(level.cand.is_empty(), "per-frame state cleared");
        assert!(level.yes_ids.capacity() >= cap, "capacity reused");
    }
}
