//! Lightweight views over a subset of a collection's sets.
//!
//! Every step of the search — tree construction, lookahead recursion,
//! interactive filtering — operates on some subset of the sets. A
//! [`SubCollection`] is just a borrowed collection plus a sorted vector of
//! set ids, cheap to split and clone.
//!
//! Entity counting is the innermost hot loop (it runs at every node of every
//! lookahead), so it writes into a reusable [`CountScratch`] buffer indexed
//! by entity id instead of allocating a hash map per call; the buffer resets
//! itself through a touched-list in `O(distinct entities)`.

use crate::collection::Collection;
use crate::entity::{EntityId, SetId};

/// A view over a sorted subset of sets in a [`Collection`].
#[derive(Clone)]
pub struct SubCollection<'c> {
    collection: &'c Collection,
    ids: Vec<SetId>,
}

/// Occurrence statistics for one entity within a sub-collection.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EntityCount {
    /// The entity.
    pub entity: EntityId,
    /// Number of sets in the sub-collection containing it (`|C⁺|`).
    pub count: u32,
}

impl<'c> SubCollection<'c> {
    /// View over the entire collection.
    pub fn full(collection: &'c Collection) -> Self {
        Self {
            ids: (0..collection.len() as u32).map(SetId).collect(),
            collection,
        }
    }

    /// View over the given ids. Sorts and deduplicates them; panics on an id
    /// out of range (programmer error, not data error).
    pub fn from_ids(collection: &'c Collection, mut ids: Vec<SetId>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        if let Some(last) = ids.last() {
            assert!(
                (last.0 as usize) < collection.len(),
                "set id {last} out of range"
            );
        }
        Self { collection, ids }
    }

    /// Internal constructor for ids that are already sorted and in range.
    pub(crate) fn from_sorted_unchecked(collection: &'c Collection, ids: Vec<SetId>) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]));
        Self { collection, ids }
    }

    /// The underlying collection.
    #[inline]
    pub fn collection(&self) -> &'c Collection {
        self.collection
    }

    /// Sorted ids of the member sets.
    #[inline]
    pub fn ids(&self) -> &[SetId] {
        &self.ids
    }

    /// Number of member sets.
    #[inline]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the view holds no sets.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Counts, for every entity occurring in the view, how many member sets
    /// contain it. Appends results to `out` in first-touched order
    /// (deterministic); resets `scratch` before returning.
    pub fn count_entities(&self, scratch: &mut CountScratch, out: &mut Vec<EntityCount>) {
        scratch.ensure(self.collection.universe());
        for &id in &self.ids {
            for e in self.collection.set(id).iter() {
                let slot = &mut scratch.counts[e.0 as usize];
                if *slot == 0 {
                    scratch.touched.push(e);
                }
                *slot += 1;
            }
        }
        out.reserve(scratch.touched.len());
        for &e in &scratch.touched {
            out.push(EntityCount {
                entity: e,
                count: scratch.counts[e.0 as usize],
            });
            scratch.counts[e.0 as usize] = 0;
        }
        scratch.touched.clear();
    }

    /// Informative entities: present in at least one member set but not in
    /// all (§3). Sorted by entity id for determinism.
    pub fn informative_entities(&self, scratch: &mut CountScratch) -> Vec<EntityCount> {
        let n = self.ids.len() as u32;
        let mut all = Vec::new();
        self.count_entities(scratch, &mut all);
        let mut out: Vec<EntityCount> = all.into_iter().filter(|ec| ec.count < n).collect();
        out.sort_unstable_by_key(|ec| ec.entity);
        out
    }

    /// Splits the view on entity `e`: `(C⁺, C⁻)` where `C⁺` holds the sets
    /// containing `e`. Uses a sorted merge against the inverted index, so the
    /// cost is `O(|C| + |sets containing e|)`.
    pub fn partition(&self, e: EntityId) -> (SubCollection<'c>, SubCollection<'c>) {
        let list = self.collection.sets_containing(e);
        let mut yes = Vec::new();
        let mut no = Vec::new();
        let mut li = 0usize;
        for &id in &self.ids {
            while li < list.len() && list[li] < id {
                li += 1;
            }
            if li < list.len() && list[li] == id {
                yes.push(id);
            } else {
                no.push(id);
            }
        }
        (
            SubCollection::from_sorted_unchecked(self.collection, yes),
            SubCollection::from_sorted_unchecked(self.collection, no),
        )
    }

    /// Retains only the member sets for which `keep` returns true.
    pub fn filter(&self, mut keep: impl FnMut(SetId) -> bool) -> SubCollection<'c> {
        SubCollection::from_sorted_unchecked(
            self.collection,
            self.ids.iter().copied().filter(|&id| keep(id)).collect(),
        )
    }

    /// Total number of elements across member sets (the work unit of one
    /// counting pass — useful for complexity assertions in benches).
    pub fn total_elements(&self) -> usize {
        self.ids
            .iter()
            .map(|&id| self.collection.set(id).len())
            .sum()
    }
}

impl std::fmt::Debug for SubCollection<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SubCollection({} sets)", self.ids.len())
    }
}

/// Reusable counting buffer: entity-indexed counters plus a touched list so
/// reset is proportional to the entities seen, not the universe.
#[derive(Default)]
pub struct CountScratch {
    counts: Vec<u32>,
    touched: Vec<EntityId>,
}

impl CountScratch {
    /// Fresh scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, universe: u32) {
        if self.counts.len() < universe as usize {
            self.counts.resize(universe as usize, 0);
        }
        debug_assert!(self.touched.is_empty(), "scratch not reset");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::Collection;

    fn figure1() -> Collection {
        Collection::from_raw_sets(vec![
            vec![0, 1, 2, 3],
            vec![0, 3, 4],
            vec![0, 1, 2, 3, 5],
            vec![0, 1, 2, 6, 7],
            vec![0, 1, 7, 8],
            vec![0, 1, 9, 10],
            vec![0, 1, 6],
        ])
        .unwrap()
    }

    #[test]
    fn full_view_covers_all() {
        let c = figure1();
        let v = c.full_view();
        assert_eq!(v.len(), 7);
        assert_eq!(v.total_elements(), 4 + 3 + 5 + 5 + 4 + 4 + 3);
    }

    #[test]
    fn counts_match_inverted_index() {
        let c = figure1();
        let v = c.full_view();
        let mut scratch = CountScratch::new();
        let mut counts = Vec::new();
        v.count_entities(&mut scratch, &mut counts);
        for ec in &counts {
            assert_eq!(
                ec.count as usize,
                c.sets_containing(ec.entity).len(),
                "entity {}",
                ec.entity
            );
        }
        // Scratch must be fully reset for reuse.
        let mut counts2 = Vec::new();
        v.count_entities(&mut scratch, &mut counts2);
        assert_eq!(counts, counts2);
    }

    #[test]
    fn informative_excludes_universal_entity() {
        let c = figure1();
        let v = c.full_view();
        let mut scratch = CountScratch::new();
        let inf = v.informative_entities(&mut scratch);
        // Entity a=0 is in all seven sets → uninformative (Example 3.1).
        assert!(inf.iter().all(|ec| ec.entity != EntityId(0)));
        // b..k are all informative: 10 of them.
        assert_eq!(inf.len(), 10);
    }

    #[test]
    fn partition_on_d_matches_paper() {
        // Fig 2a: d splits into {S1,S2,S3} and {S4..S7}.
        let c = figure1();
        let (yes, no) = c.full_view().partition(EntityId(3));
        assert_eq!(yes.ids(), &[SetId(0), SetId(1), SetId(2)]);
        assert_eq!(no.ids(), &[SetId(3), SetId(4), SetId(5), SetId(6)]);
    }

    #[test]
    fn partition_of_subview() {
        let c = figure1();
        let v = SubCollection::from_ids(&c, vec![SetId(0), SetId(3), SetId(4)]);
        // g=6 is in S4 and S7; within this view only S4.
        let (yes, no) = v.partition(EntityId(6));
        assert_eq!(yes.ids(), &[SetId(3)]);
        assert_eq!(no.ids(), &[SetId(0), SetId(4)]);
    }

    #[test]
    fn partition_on_absent_entity() {
        let c = figure1();
        let (yes, no) = c.full_view().partition(EntityId(999));
        assert!(yes.is_empty());
        assert_eq!(no.len(), 7);
    }

    #[test]
    fn from_ids_sorts_and_dedups() {
        let c = figure1();
        let v = SubCollection::from_ids(&c, vec![SetId(4), SetId(1), SetId(4)]);
        assert_eq!(v.ids(), &[SetId(1), SetId(4)]);
    }

    #[test]
    fn filter_keeps_order() {
        let c = figure1();
        let v = c.full_view().filter(|id| id.0 % 2 == 0);
        assert_eq!(v.ids(), &[SetId(0), SetId(2), SetId(4), SetId(6)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_ids_checks_range() {
        let c = figure1();
        SubCollection::from_ids(&c, vec![SetId(7)]);
    }

    #[test]
    fn informative_on_two_unique_sets_is_nonempty() {
        // Any two distinct sets must expose at least one informative entity
        // (their symmetric difference) — the invariant that guarantees tree
        // construction terminates.
        let c = Collection::from_raw_sets(vec![vec![1, 2], vec![1, 3]]).unwrap();
        let mut scratch = CountScratch::new();
        let inf = c.full_view().informative_entities(&mut scratch);
        assert!(!inf.is_empty());
    }
}
