//! Sorted, deduplicated entity sets.
//!
//! Sets are stored as sorted boxed slices of [`EntityId`]: two words of
//! overhead, cache-friendly scans, `O(log s)` membership, and `O(s₁+s₂)`
//! merge-based set algebra — the only operations the discovery algorithms
//! need.

use crate::entity::EntityId;
use setdisc_util::Fingerprint;

/// An immutable set of entities, stored sorted and deduplicated.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct EntitySet {
    elems: Box<[EntityId]>,
}

impl EntitySet {
    /// Builds a set from any iterator of ids (sorts and deduplicates).
    /// Intentionally shadows `FromIterator::from_iter` (the trait impl
    /// delegates here); the inherent name reads better at call sites.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(iter: impl IntoIterator<Item = EntityId>) -> Self {
        let mut v: Vec<EntityId> = iter.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        Self {
            elems: v.into_boxed_slice(),
        }
    }

    /// Builds from raw `u32` ids (convenience for tests and loaders).
    pub fn from_raw(iter: impl IntoIterator<Item = u32>) -> Self {
        Self::from_iter(iter.into_iter().map(EntityId))
    }

    /// Wraps a vector that the caller guarantees is sorted and deduplicated.
    /// Verified with a debug assertion.
    pub fn from_sorted_unchecked(v: Vec<EntityId>) -> Self {
        debug_assert!(v.windows(2).all(|w| w[0] < w[1]), "not sorted/deduped");
        Self {
            elems: v.into_boxed_slice(),
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// True when the set has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Membership test in `O(log s)`.
    #[inline]
    pub fn contains(&self, e: EntityId) -> bool {
        self.elems.binary_search(&e).is_ok()
    }

    /// Elements in increasing order.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.elems.iter().copied()
    }

    /// The sorted elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[EntityId] {
        &self.elems
    }

    /// 128-bit content digest of the element set (the lane-wise sum of
    /// [`Fingerprint::of`] over the elements). [`crate::CollectionBuilder`]
    /// keys its duplicate filter on `(fingerprint, len)` so pushing a set
    /// never clones it; see [`setdisc_util::hash`] for the collision bound.
    pub fn fingerprint(&self) -> Fingerprint {
        self.elems.iter().map(|e| Fingerprint::of(e.0 as u64)).sum()
    }

    /// True if every element of `self` is in `other`.
    pub fn is_subset_of(&self, other: &EntitySet) -> bool {
        if self.len() > other.len() {
            return false;
        }
        let mut oi = other.elems.iter();
        'outer: for &e in self.elems.iter() {
            for &o in oi.by_ref() {
                match o.cmp(&e) {
                    std::cmp::Ordering::Less => continue,
                    std::cmp::Ordering::Equal => continue 'outer,
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }

    /// Size of the intersection, by sorted merge.
    pub fn intersection_size(&self, other: &EntitySet) -> usize {
        let (mut i, mut j, mut n) = (0, 0, 0);
        while i < self.elems.len() && j < other.elems.len() {
            match self.elems[i].cmp(&other.elems[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    n += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        n
    }

    /// Jaccard similarity `|A∩B| / |A∪B|`; 1.0 for two empty sets.
    pub fn jaccard(&self, other: &EntitySet) -> f64 {
        let inter = self.intersection_size(other);
        let union = self.len() + other.len() - inter;
        if union == 0 {
            1.0
        } else {
            inter as f64 / union as f64
        }
    }
}

impl setdisc_util::mem::HeapSize for EntitySet {
    fn heap_bytes(&self) -> usize {
        setdisc_util::mem::boxed_slice_bytes(&self.elems)
    }
}

impl std::fmt::Debug for EntitySet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set()
            .entries(self.elems.iter().map(|e| e.0))
            .finish()
    }
}

impl FromIterator<EntityId> for EntitySet {
    fn from_iter<T: IntoIterator<Item = EntityId>>(iter: T) -> Self {
        Self::from_iter(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[u32]) -> EntitySet {
        EntitySet::from_raw(v.iter().copied())
    }

    #[test]
    fn sorts_and_dedups() {
        let set = s(&[3, 1, 2, 3, 1]);
        assert_eq!(set.len(), 3);
        assert_eq!(set.iter().map(|e| e.0).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn contains_uses_binary_search() {
        let set = s(&[10, 20, 30]);
        assert!(set.contains(EntityId(20)));
        assert!(!set.contains(EntityId(25)));
        assert!(!s(&[]).contains(EntityId(0)));
    }

    #[test]
    fn subset_relation() {
        assert!(s(&[1, 3]).is_subset_of(&s(&[1, 2, 3])));
        assert!(s(&[]).is_subset_of(&s(&[1])));
        assert!(!s(&[1, 4]).is_subset_of(&s(&[1, 2, 3])));
        assert!(!s(&[1, 2, 3]).is_subset_of(&s(&[1, 2])));
        assert!(s(&[5]).is_subset_of(&s(&[5])));
        assert!(!s(&[0]).is_subset_of(&s(&[1, 2])));
    }

    #[test]
    fn intersection_sizes() {
        assert_eq!(s(&[1, 2, 3]).intersection_size(&s(&[2, 3, 4])), 2);
        assert_eq!(s(&[1]).intersection_size(&s(&[2])), 0);
        assert_eq!(s(&[]).intersection_size(&s(&[1])), 0);
        assert_eq!(s(&[1, 5, 9]).intersection_size(&s(&[1, 5, 9])), 3);
    }

    #[test]
    fn jaccard_values() {
        assert!((s(&[1, 2]).jaccard(&s(&[2, 3])) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(s(&[]).jaccard(&s(&[])), 1.0);
        assert_eq!(s(&[1]).jaccard(&s(&[2])), 0.0);
    }

    #[test]
    fn equality_ignores_input_order() {
        assert_eq!(s(&[1, 2, 3]), s(&[3, 2, 1]));
    }

    #[test]
    fn fingerprint_tracks_content() {
        assert_eq!(s(&[1, 2, 3]).fingerprint(), s(&[3, 2, 1]).fingerprint());
        assert_ne!(s(&[1, 2, 3]).fingerprint(), s(&[1, 2, 4]).fingerprint());
        assert_eq!(s(&[]).fingerprint(), Fingerprint::ZERO);
        assert_eq!(
            s(&[7, 9]).fingerprint(),
            Fingerprint::of(7) + Fingerprint::of(9)
        );
    }

    #[test]
    fn heap_bytes_is_exact_for_the_boxed_elements() {
        use setdisc_util::mem::HeapSize as _;
        assert_eq!(s(&[1, 2, 3]).heap_bytes(), 3 * 4);
        assert_eq!(s(&[]).heap_bytes(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not sorted")]
    fn unchecked_ctor_checks_in_debug() {
        EntitySet::from_sorted_unchecked(vec![EntityId(2), EntityId(1)]);
    }
}
