//! k-step lookahead entity selection with pruning (paper §4.3–4.4).
//!
//! [`KLp`] implements Algorithm 1 (*k-Lookahead with Pruning*) plus its two
//! beam variants:
//!
//! * **k-LP** — all informative entities are candidates at every step;
//! * **k-LPLE** — only the `q` most-even entities are candidates at every
//!   step of the bound calculation (§4.4.2);
//! * **k-LPLVE** — `q` candidates at the selection level, a *single*
//!   candidate in every recursive step (§4.4.3).
//!
//! Pruning (Lemma 4.4) is applied in the two places §4.3.1 describes:
//!
//! 1. candidates are ranked by 1-step lower bound (≡ most-even first); the
//!    scan stops at the first candidate whose `LB₁` already reaches the best
//!    `LB_k` found (the paper's AFLV), pruning it and every later candidate.
//!    The ranking is *lazy* (see `Ranked`): only the consumed prefix is ever
//!    sorted (via repeated `select_nth` partitioning), because the early
//!    exit typically visits a handful of the hundreds of candidates;
//! 2. recursive calls receive exclusive upper limits (eqs. 11–14); a child
//!    that cannot beat its limit returns "pruned" and the candidate is
//!    abandoned without computing the other child.
//!
//! Results are memoized per (sub-collection, k) with the exact cache
//! semantics of Algorithm 1 lines 1–6: a negative entry `(None, b)` means
//! "no entity here has `LB_k < b`" and only short-circuits callers whose
//! limit is at most `b`. The memo key is the view's 128-bit content
//! [`Fingerprint`] paired with its length — an O(1) probe with no boxed id
//! vector per entry; see `setdisc_util::hash` for the collision bound.
//!
//! The recursion itself is allocation-free in steady state: candidate lists,
//! counting buffers, and the storage of every split live in a depth-indexed
//! [`LookaheadScratch`] arena; splits are word-parallel bitmap kernels
//! ([`SubCollection::partition_into`]); `LB₀` values come from a per-search
//! [`Lb0Table`]; and duplicate-partition candidates (entities with
//! identical membership across the member sets) are dropped on the
//! membership digest the split computes as a byproduct, before any bound
//! work happens — which frees candidate generation to use the
//! fingerprint-free counting pass.
//!
//! # Parallel selection
//!
//! At the selection level (`is_top`), the candidate loop can fan out over
//! the [`setdisc_util::pool`] worker pool **without giving up Lemma-4.4
//! losslessness**: after a short sequential warm-up establishes a finite
//! incumbent bound, the surviving candidates are claimed in rank order by
//! worker threads that share an atomic incumbent (`fetch_min` of every
//! exact bound found) and keep private memo caches and scratch arenas. Any
//! bound a worker computes under *some* upper limit is either the exact
//! `LB_k` of its candidate (usable regardless of timing) or a proof that
//! the candidate cannot beat that limit; a deterministic **replay** on the
//! calling thread then reconstructs the sequential scan — re-evaluating
//! the rare candidate whose recorded pruning limit was tighter than the
//! replay's running bound at that point — so the selected entity and bound
//! are bit-identical to the single-threaded path (deterministic
//! min-entity-id tie-break included). See DESIGN.md §8 for the argument.
//!
//! [`GainK`] is the unpruned k-step lookahead baseline in the style of
//! Esmeir & Markovitch's *gain-k* — identical recursion, no sorting-based
//! early exit, no upper limits, no memoization — used by the Figure 4
//! speedup experiments.

use crate::cost::{imbalance, AvgDepth, Cost, CostModel, Lb0Table, UNBOUNDED};
use crate::entity::EntityId;
use crate::strategy::{
    CandidateOutcome, RankedCandidate, SelectionStrategy, SelectionTrace, EXPLAIN_RANKED_CAP,
};
use crate::subcollection::{Candidate, LookaheadScratch, SubCollection, SubStorage};
use crate::weights::{combine_w, ul_first_w, ul_second_w, wlb0, WeightTable};
use setdisc_util::{pool, Fingerprint, FxHashMap, FxHashSet};
use std::mem;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Candidate-limiting mode for [`KLp`] (§4.4).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum KLpBeam {
    /// k-LP: every informative entity is a candidate.
    Full,
    /// k-LPLE: the `q` most-even entities are candidates at every level.
    Limited {
        /// Beam width.
        q: usize,
    },
    /// k-LPLVE: `q` candidates at the selection level, one in recursion.
    LimitedVariable {
        /// Beam width at the selection level.
        q: usize,
    },
}

impl KLpBeam {
    fn width(self, is_top: bool) -> usize {
        match self {
            KLpBeam::Full => usize::MAX,
            KLpBeam::Limited { q } => q,
            KLpBeam::LimitedVariable { q } => {
                if is_top {
                    q
                } else {
                    1
                }
            }
        }
    }
}

/// Prune statistics for one selection node (one entry per decision-tree
/// node / interactive question), reproducing Table 4.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct NodeStats {
    /// `|C|` at this node.
    pub collection_size: u32,
    /// Informative entities available at this node.
    pub informative: u32,
    /// Entities whose k-step bound computation was started.
    pub evaluated: u32,
}

impl NodeStats {
    /// Entities pruned outright at this node.
    pub fn pruned(&self) -> u32 {
        self.informative - self.evaluated
    }

    /// Fraction pruned in `[0, 1]`; 0 when there was nothing to prune.
    pub fn pruned_fraction(&self) -> f64 {
        if self.informative == 0 {
            0.0
        } else {
            self.pruned() as f64 / self.informative as f64
        }
    }
}

/// Aggregated prune statistics across selection nodes.
#[derive(Clone, Debug, Default)]
pub struct PruneStats {
    /// Per-node records in selection order.
    pub nodes: Vec<NodeStats>,
}

impl PruneStats {
    /// Mean pruned fraction across nodes (Table 4 "Avg").
    pub fn avg_pruned_fraction(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes
            .iter()
            .map(NodeStats::pruned_fraction)
            .sum::<f64>()
            / self.nodes.len() as f64
    }

    /// Minimum pruned fraction across nodes (Table 4 "Min").
    pub fn min_pruned_fraction(&self) -> f64 {
        self.nodes
            .iter()
            .map(NodeStats::pruned_fraction)
            .fold(f64::INFINITY, f64::min)
            .min(1.0)
    }

    /// Drops all records.
    pub fn clear(&mut self) {
        self.nodes.clear();
    }
}

/// Memo key: `(view fingerprint, |view|, k, is_top)`. Copy-sized, so a
/// probe hashes four words instead of a boxed id slice.
type CacheKey = (Fingerprint, u32, u32, bool);

#[derive(Copy, Clone)]
struct CacheEntry {
    entity: Option<EntityId>,
    bound: Cost,
}

/// Total ranking key of Algorithm 1 line 11: most even first (via `LB₁`,
/// which orders identically for the real-valued cost and is sound for the
/// ceiling version — see the note in [`SearchCtx::klp`]), ties by
/// imbalance then entity id. Unique per candidate, so any partial ordering
/// scheme yields the same sequence.
#[inline]
fn rank_key(c: &Candidate) -> (Cost, u64, EntityId) {
    (c.score, c.imbalance, c.entity)
}

/// A lazily ranked candidate list: position `i` of the fully sorted order
/// is computable without sorting the rest. The consumed prefix is extended
/// geometrically — `select_nth` partitions the unsorted tail, then only the
/// new chunk is sorted — so a node that early-exits after a handful of
/// candidates pays `O(m)` instead of `O(m log m)`.
struct Ranked<'a> {
    cand: &'a mut [Candidate],
    sorted: usize,
}

impl<'a> Ranked<'a> {
    fn new(cand: &'a mut [Candidate]) -> Self {
        Self { cand, sorted: 0 }
    }

    /// The candidate at rank `i` (`i < len`).
    #[inline]
    fn get(&mut self, i: usize) -> Candidate {
        if i >= self.sorted {
            self.sort_through((i + 1).max(self.sorted * 2).max(16));
        }
        self.cand[i]
    }

    /// Ensures positions `0..target` hold the globally smallest candidates
    /// in ascending [`rank_key`] order.
    fn sort_through(&mut self, target: usize) {
        let target = target.min(self.cand.len());
        if target <= self.sorted {
            return;
        }
        let tail = &mut self.cand[self.sorted..];
        let take = target - self.sorted;
        if take < tail.len() {
            tail.select_nth_unstable_by_key(take - 1, rank_key);
        }
        tail[..take].sort_unstable_by_key(rank_key);
        self.sorted = target;
    }

    /// All candidates (sorted prefix first; tail order unspecified).
    fn slice(&self) -> &[Candidate] {
        self.cand
    }

    /// How many candidates (in any position) have `LB₁` strictly below
    /// `ul` — the survivors a parallel phase could still evaluate.
    fn count_below(&self, ul: Cost) -> usize {
        self.cand.iter().filter(|c| c.score < ul).count()
    }
}

/// The sequential recursion of Algorithm 1 over one cache + scratch arena.
/// [`KLp`] drives it with its own state; each parallel worker drives one
/// over private state — the struct is what makes "same recursion, many
/// arenas" expressible without duplicating the algorithm.
struct SearchCtx<'a, M: CostModel> {
    beam: KLpBeam,
    lb0: &'a Lb0Table<M>,
    /// §6 prior (weighted-AD mode). Only ever `Some` for `M = AvgDepth`
    /// ([`KLp::with_prior`] is restricted to that metric), so the weighted
    /// branches below may read `self.lb0` as the AD table.
    weights: Option<&'a WeightTable>,
    cache: &'a mut FxHashMap<CacheKey, CacheEntry>,
    scratch: &'a mut LookaheadScratch,
}

impl<M: CostModel> SearchCtx<'_, M> {
    /// The recursive body of Algorithm 1 below the selection level.
    /// Returns `(entity, bound)`: `entity` is the argmin when some
    /// candidate achieves `LB_k < ul`, otherwise `None` with `bound` = the
    /// tightest bound knowledge (`ul`). `depth` indexes the scratch arena.
    fn klp(
        &mut self,
        view: &SubCollection<'_>,
        k: u32,
        mut ul: Cost,
        excluded: &FxHashSet<EntityId>,
        depth: usize,
    ) -> (Option<EntityId>, Cost) {
        let n = view.len() as u64;
        if n <= 1 {
            return (None, 0);
        }

        // Lines 1–6: cache probe. Skipped under exclusions — the cached
        // answer may be an excluded entity.
        let use_cache = excluded.is_empty();
        let key = if use_cache {
            let key: CacheKey = (view.fingerprint(), view.len() as u32, k, false);
            if let Some(entry) = self.cache.get(&key) {
                if ul <= entry.bound {
                    return (None, entry.bound);
                }
                if entry.entity.is_some() {
                    return (entry.entity, entry.bound);
                }
                // Negative entry with a smaller bound than our limit: the
                // range [entry.bound, ul) is unexplored — recompute.
            }
            Some(key)
        } else {
            None
        };

        let mut level = self.scratch.take_level(depth);

        // Lines 7–10: base case — the minimal-LB₁ (most even) entity from
        // a fingerprint-free counting pass (no partition happens at k ≤ 1,
        // so no membership digests are needed and the count-only postings
        // sweep is pure popcounts). A single min pass; no need to rank the
        // losers (the beam can only truncate candidates *after* the
        // minimum, so the global argmin is the beam's argmin for every
        // beam width).
        if k <= 1 {
            let mut best: Option<(Cost, u64, EntityId)> = None;
            if let Some(w) = self.weights {
                // Weighted base case: the same argmin with weighted LB₁ and
                // mass imbalance — under a uniform table both keys equal the
                // unweighted ones value-for-value, so the argmin agrees.
                let wv = view.total_weight(w);
                view.informative_weighted(&mut self.scratch.counts, &mut level.wstats, w);
                for s in &level.wstats {
                    if !excluded.is_empty() && excluded.contains(&s.entity) {
                        continue;
                    }
                    let (n1, n2) = (s.count as u64, n - s.count as u64);
                    let (w1, w2) = (s.wsum, wv - s.wsum);
                    let score = combine_w(
                        wv,
                        wlb0(w1, n1, self.lb0.lb0(n1)),
                        wlb0(w2, n2, self.lb0.lb0(n2)),
                    );
                    let cand_key = (score, (2 * w1).abs_diff(wv), s.entity);
                    if best.is_none_or(|b| cand_key < b) {
                        best = Some(cand_key);
                    }
                }
            } else {
                view.informative_into(&mut self.scratch.counts, &mut level.ecounts);
                for ec in &level.ecounts {
                    if !excluded.is_empty() && excluded.contains(&ec.entity) {
                        continue;
                    }
                    let n1 = ec.count as u64;
                    let cand_key = (self.lb0.lb1(n, n1), imbalance(n, n1), ec.entity);
                    if best.is_none_or(|b| cand_key < b) {
                        best = Some(cand_key);
                    }
                }
            }
            let result = best
                .map(|(score, _, e)| (Some(e), score))
                .unwrap_or((None, 0));
            self.scratch.put_level(depth, level);
            if let (Some(key), (Some(_), _)) = (key, result) {
                self.cache.insert(
                    key,
                    CacheEntry {
                        entity: result.0,
                        bound: result.1,
                    },
                );
            }
            return result;
        }

        // Candidate list (line 11) from a fingerprint-free counting pass:
        // only candidates that survive the early exit are ever partitioned,
        // and the bitmap split computes the yes-side digest as a byproduct,
        // so membership fingerprints are deduped post-partition instead of
        // paying a digest per view member up front.
        if let Some(w) = self.weights {
            let wv = view.total_weight(w);
            view.informative_weighted(&mut self.scratch.counts, &mut level.wstats, w);
            for s in &level.wstats {
                if !excluded.is_empty() && excluded.contains(&s.entity) {
                    continue;
                }
                let (n1, n2) = (s.count as u64, n - s.count as u64);
                let (w1, w2) = (s.wsum, wv - s.wsum);
                level.cand.push(Candidate {
                    score: combine_w(
                        wv,
                        wlb0(w1, n1, self.lb0.lb0(n1)),
                        wlb0(w2, n2, self.lb0.lb0(n2)),
                    ),
                    imbalance: (2 * w1).abs_diff(wv),
                    entity: s.entity,
                    n1,
                    fp: Fingerprint::ZERO,
                });
            }
        } else {
            view.informative_into(&mut self.scratch.counts, &mut level.ecounts);
            for ec in &level.ecounts {
                if !excluded.is_empty() && excluded.contains(&ec.entity) {
                    continue;
                }
                let n1 = ec.count as u64;
                level.cand.push(Candidate {
                    score: self.lb0.lb1(n, n1),
                    imbalance: imbalance(n, n1),
                    entity: ec.entity,
                    n1,
                    fp: Fingerprint::ZERO,
                });
            }
        }

        // Rank by (LB₁, imbalance, id), lazily. The paper sorts by
        // most-even partitioning and notes the order coincides with LB₁
        // order — true for the real-valued `n·log₂n` but not for the
        // ceiling version (e.g. n=35: a 16/19 split has ⌈16·log16⌉ +
        // ⌈19·log19⌉ = 145 < 146 = the 17/18 split's, because 16 is a
        // power of two). Ranking by LB₁ first keeps the early exit of
        // lines 14–15 sound; imbalance remains the paper's tie-break.
        let width = level.cand.len().min(self.beam.width(false));
        let mut best: Option<EntityId> = None;
        {
            let mut ranked = Ranked::new(&mut level.cand);
            // Distinct entities often induce the *same* partition (entities
            // with identical membership across the candidate sets —
            // ubiquitous when sets are query outputs). Identical partitions
            // have identical bounds, and the first entity in rank order
            // wins ties either way, so duplicates can be skipped without
            // changing the selection. The word-parallel split computes the
            // yes-side digest anyway, so the dedup check reads it from the
            // freshly split child before any bound work happens.
            for i in 0..width {
                let c = ranked.get(i);
                // Lines 14–15: ranked early exit — prunes c and every
                // candidate after it (Lemma 4.4 with l = 1).
                if c.score >= ul {
                    break;
                }
                let (cpos, cneg) = view.partition_into(
                    c.entity,
                    mem::take(&mut level.yes),
                    mem::take(&mut level.no),
                );
                debug_assert_eq!(cpos.len() as u64, c.n1);
                let l = if level.seen.insert((cpos.fingerprint(), c.n1)) {
                    self.bound_children(&cpos, &cneg, k, ul, excluded, depth)
                } else {
                    None // same split as an earlier (preferred) entity
                };
                level.yes = cpos.into_storage();
                level.no = cneg.into_storage();
                // Lines 33–36.
                if let Some(l) = l {
                    if l < ul {
                        ul = l;
                        best = Some(c.entity);
                    }
                }
            }
        }
        self.scratch.put_level(depth, level);

        if let Some(key) = key {
            self.cache.insert(
                key,
                CacheEntry {
                    entity: best,
                    bound: ul,
                },
            );
        }
        (best, ul)
    }

    /// Lines 18–32: bound both children of one candidate split, or `None`
    /// when either side is pruned against its upper limit.
    fn bound_children(
        &mut self,
        cpos: &SubCollection<'_>,
        cneg: &SubCollection<'_>,
        k: u32,
        ul: Cost,
        excluded: &FxHashSet<EntityId>,
        depth: usize,
    ) -> Option<Cost> {
        let n1 = cpos.len() as u64;
        let n2 = cneg.len() as u64;
        let n = n1 + n2;

        // §6 weighted mode swaps the cardinality-based limits (eqs. 11/13)
        // for their weight-mass counterparts; the recursion is otherwise
        // identical. `wq` is the children's summed weights — computed here
        // per candidate, so the recursion needs no weight threading.
        let wq = self
            .weights
            .map(|w| (cpos.total_weight(w), cneg.total_weight(w)));

        // Lines 18–25: bound the positive side.
        let l_pos = if n1 == 1 {
            0
        } else {
            let ul_pos = match wq {
                Some((w1, w2)) => ul_first_w(ul, w1 + w2, wlb0(w2, n2, self.lb0.lb0(n2)))?,
                None => M::ul_first(ul, n, self.lb0.lb0(n2))?,
            };
            match self.klp(cpos, k - 1, ul_pos, excluded, depth + 1) {
                (Some(_), l) => l,
                (None, _) => return None, // pruned (lines 24–25)
            }
        };

        // Lines 26–32: bound the negative side with the tightened limit.
        let l_neg = if n2 == 1 {
            0
        } else {
            let ul_neg = match wq {
                Some((w1, w2)) => ul_second_w(ul, w1 + w2, l_pos)?,
                None => M::ul_second(ul, n, l_pos)?,
            };
            match self.klp(cneg, k - 1, ul_neg, excluded, depth + 1) {
                (Some(_), l) => l,
                (None, _) => return None,
            }
        };

        Some(match wq {
            Some((w1, w2)) => combine_w(w1 + w2, l_pos, l_neg),
            None => M::combine(n, l_pos, l_neg),
        })
    }

    /// Partitions `view` on one candidate and bounds both children —
    /// the unit of work the selection-level loop (sequential or a parallel
    /// worker) performs per candidate. Returns the storage for recycling.
    #[allow(clippy::too_many_arguments)]
    fn bound_candidate(
        &mut self,
        view: &SubCollection<'_>,
        c: &Candidate,
        k: u32,
        ul: Cost,
        excluded: &FxHashSet<EntityId>,
        yes: SubStorage,
        no: SubStorage,
    ) -> (Option<Cost>, SubStorage, SubStorage) {
        let (cpos, cneg) = view.partition_into(c.entity, yes, no);
        debug_assert_eq!(cpos.len() as u64, c.n1);
        let l = self.bound_children(&cpos, &cneg, k, ul, excluded, 0);
        (l, cpos.into_storage(), cneg.into_storage())
    }
}

/// Per-worker state for the parallel selection loop: a private memo cache
/// and scratch arena, reused across selections.
#[derive(Default)]
struct ParWorker {
    cache: FxHashMap<CacheKey, CacheEntry>,
    scratch: LookaheadScratch,
}

/// What a parallel worker learned about one candidate.
#[derive(Copy, Clone)]
enum ParOutcome {
    /// Exact `LB_k` of the candidate (valid regardless of the limit used).
    Evaluated(Cost),
    /// The candidate cannot beat the recorded limit (`LB_k ≥ limit`).
    Pruned(Cost),
}

/// Algorithm 1: k-lookahead entity selection with pruning, generic over the
/// cost metric `M` ([`crate::AvgDepth`] or [`crate::Height`]).
pub struct KLp<M: CostModel> {
    k: u32,
    beam: KLpBeam,
    /// §6 prior. Settable only through [`KLp::with_prior`] (AD metric only);
    /// `None` is the unweighted Algorithm-1 path, bit-for-bit unchanged.
    weights: Option<Arc<WeightTable>>,
    cache: FxHashMap<CacheKey, CacheEntry>,
    cache_token: u64,
    scratch: LookaheadScratch,
    lb0: Lb0Table<M>,
    threads: usize,
    min_par_survivors: usize,
    min_par_view: usize,
    workers: Vec<ParWorker>,
    stats: PruneStats,
    record_stats: bool,
}

impl KLp<AvgDepth> {
    /// Attaches a §6 prior: bounds, pruning limits, and the selection key
    /// switch to the weighted-AD forms (weighted total depth in place of
    /// total depth, weight mass in place of cardinality). Restricted to the
    /// AD metric — the paper's non-uniform-prior extension weights the
    /// *expected* depth; worst-case height has no mass to weight. A uniform
    /// table is valid and provably selects identically to no table (the
    /// `weighted_lossless` property suite pins this bit-for-bit). Clears the
    /// memo caches: weighted and unweighted bounds never mix.
    pub fn with_prior(mut self, weights: Arc<WeightTable>) -> Self {
        self.weights = Some(weights);
        self.cache.clear();
        for w in &mut self.workers {
            w.cache.clear();
        }
        self
    }

    /// The attached §6 prior, if any.
    pub fn prior(&self) -> Option<&Arc<WeightTable>> {
        self.weights.as_ref()
    }
}

impl<M: CostModel> KLp<M> {
    /// k-LP with the full candidate set. `k ≥ 1`; `k = 1` degenerates to the
    /// 1-step lower bound (≡ InfoGain, Lemma 4.3).
    pub fn new(k: u32) -> Self {
        Self::with_beam(k, KLpBeam::Full)
    }

    /// k-LPLE: beam of `q` most-even candidates at every level.
    pub fn limited(k: u32, q: usize) -> Self {
        Self::with_beam(k, KLpBeam::Limited { q })
    }

    /// k-LPLVE: beam of `q` at the selection level, single candidate below.
    pub fn limited_variable(k: u32, q: usize) -> Self {
        Self::with_beam(k, KLpBeam::LimitedVariable { q })
    }

    /// Fully parameterized constructor. Parallelism defaults to the shared
    /// [`pool::configured_threads`] knob (`SETDISC_THREADS`), gated so only
    /// selection nodes with enough surviving work fan out.
    pub fn with_beam(k: u32, beam: KLpBeam) -> Self {
        assert!(k >= 1, "lookahead depth must be at least 1");
        if let KLpBeam::Limited { q } | KLpBeam::LimitedVariable { q } = beam {
            assert!(q >= 1, "beam width must be at least 1");
        }
        Self {
            k,
            beam,
            weights: None,
            cache: FxHashMap::default(),
            cache_token: 0,
            scratch: LookaheadScratch::new(),
            lb0: Lb0Table::new(),
            threads: pool::configured_threads(),
            min_par_survivors: 8,
            min_par_view: 256,
            workers: Vec::new(),
            stats: PruneStats::default(),
            record_stats: false,
        }
    }

    /// Overrides the worker count for the parallel selection loop
    /// (`1` forces the purely sequential path; `0` restores the
    /// [`pool::configured_threads`] default). The selection is
    /// bit-identical either way — this is a performance knob only.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            pool::configured_threads()
        } else {
            threads
        };
        self
    }

    /// Overrides the parallel-dispatch gate: fan out only when at least
    /// `min_survivors` ranked candidates still beat the incumbent bound
    /// and the view holds at least `min_view` sets. The defaults keep
    /// small nodes sequential (a scoped-thread spawn costs microseconds);
    /// benches and determinism tests lower them to force the parallel
    /// path.
    pub fn with_parallel_gate(mut self, min_survivors: usize, min_view: usize) -> Self {
        self.min_par_survivors = min_survivors.max(1);
        self.min_par_view = min_view;
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enables per-node prune statistics (Table 4). Off by default: the
    /// record itself is cheap, but callers usually want a clean slate per
    /// tree, which this forces them to think about.
    pub fn record_stats(mut self, on: bool) -> Self {
        self.record_stats = on;
        self
    }

    /// Recorded prune statistics.
    pub fn stats(&self) -> &PruneStats {
        &self.stats
    }

    /// Clears recorded statistics.
    pub fn clear_stats(&mut self) {
        self.stats.clear();
    }

    /// Number of memoized (sub-collection, k) entries on the calling
    /// thread's cache (parallel workers keep additional private caches).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Drops the memo caches (they are also dropped automatically when the
    /// strategy is used on a different collection).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
        for w in &mut self.workers {
            w.cache.clear();
        }
    }

    /// Lookahead depth `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The `LB_k` bound of the entity this strategy would select on `view`,
    /// in scaled cost units — the quantity eq. (8) defines.
    pub fn bound(&mut self, view: &SubCollection<'_>) -> Option<(EntityId, Cost)> {
        self.prepare_for(view);
        let excluded = FxHashSet::default();
        let (e, l, _, _) = self.select_top(view, &excluded);
        e.map(|e| (e, l))
    }

    fn prepare_for(&mut self, view: &SubCollection<'_>) {
        let token = view.collection().token();
        if token != self.cache_token {
            self.cache.clear();
            for w in &mut self.workers {
                w.cache.clear();
            }
            self.cache_token = token;
        }
    }

    /// The selection level of Algorithm 1 (`is_top`): cache probe under the
    /// top key, candidate generation, then the pruned scan — sequential
    /// with lazy ranking, fanning out to the worker pool when enough
    /// candidates survive the warm-up. Returns
    /// `(entity, bound, informative, evaluated)`; the trailing counts are
    /// the Table-4 node statistics (zero on a memo hit, which re-runs no
    /// scan).
    fn select_top(
        &mut self,
        view: &SubCollection<'_>,
        excluded: &FxHashSet<EntityId>,
    ) -> (Option<EntityId>, Cost, u32, u32) {
        let n = view.len() as u64;
        if n <= 1 {
            return (None, 0, 0, 0);
        }
        self.lb0.ensure(n);
        let mut ul = UNBOUNDED;
        let use_cache = excluded.is_empty();
        let key = if use_cache {
            let key: CacheKey = (view.fingerprint(), view.len() as u32, self.k, true);
            if let Some(entry) = self.cache.get(&key) {
                if ul <= entry.bound {
                    return (None, entry.bound, 0, 0);
                }
                if entry.entity.is_some() {
                    return (entry.entity, entry.bound, 0, 0);
                }
            }
            Some(key)
        } else {
            None
        };

        let mut level = self.scratch.take_level(0);

        // Base case: identical to the recursive one, plus stats recording.
        if self.k <= 1 {
            let mut informative_total = 0u32;
            let mut best: Option<(Cost, u64, EntityId)> = None;
            if let Some(w) = self.weights.as_deref() {
                let wv = view.total_weight(w);
                view.informative_weighted(&mut self.scratch.counts, &mut level.wstats, w);
                for s in &level.wstats {
                    if !excluded.is_empty() && excluded.contains(&s.entity) {
                        continue;
                    }
                    informative_total += 1;
                    let (n1, n2) = (s.count as u64, n - s.count as u64);
                    let (w1, w2) = (s.wsum, wv - s.wsum);
                    let score = combine_w(
                        wv,
                        wlb0(w1, n1, self.lb0.lb0(n1)),
                        wlb0(w2, n2, self.lb0.lb0(n2)),
                    );
                    let cand_key = (score, (2 * w1).abs_diff(wv), s.entity);
                    if best.is_none_or(|b| cand_key < b) {
                        best = Some(cand_key);
                    }
                }
            } else {
                view.informative_into(&mut self.scratch.counts, &mut level.ecounts);
                for ec in &level.ecounts {
                    if !excluded.is_empty() && excluded.contains(&ec.entity) {
                        continue;
                    }
                    informative_total += 1;
                    let n1 = ec.count as u64;
                    let cand_key = (self.lb0.lb1(n, n1), imbalance(n, n1), ec.entity);
                    if best.is_none_or(|b| cand_key < b) {
                        best = Some(cand_key);
                    }
                }
            }
            let result = best
                .map(|(score, _, e)| (Some(e), score))
                .unwrap_or((None, 0));
            let beam_len = (informative_total as usize).min(self.beam.width(true)) as u32;
            self.scratch.put_level(0, level);
            if let (Some(key), (Some(_), _)) = (key, result) {
                self.cache.insert(
                    key,
                    CacheEntry {
                        entity: result.0,
                        bound: result.1,
                    },
                );
            }
            let evaluated = informative_total.min(beam_len);
            if self.record_stats {
                self.stats.nodes.push(NodeStats {
                    collection_size: n as u32,
                    informative: informative_total,
                    evaluated,
                });
            }
            return (result.0, result.1, informative_total, evaluated);
        }

        // Fingerprint-free candidate generation; duplicate-partition dedup
        // happens post-partition (the split computes the digest), exactly
        // as in [`SearchCtx::klp`].
        if let Some(w) = self.weights.as_deref() {
            let wv = view.total_weight(w);
            view.informative_weighted(&mut self.scratch.counts, &mut level.wstats, w);
            for s in &level.wstats {
                if !excluded.is_empty() && excluded.contains(&s.entity) {
                    continue;
                }
                let (n1, n2) = (s.count as u64, n - s.count as u64);
                let (w1, w2) = (s.wsum, wv - s.wsum);
                level.cand.push(Candidate {
                    score: combine_w(
                        wv,
                        wlb0(w1, n1, self.lb0.lb0(n1)),
                        wlb0(w2, n2, self.lb0.lb0(n2)),
                    ),
                    imbalance: (2 * w1).abs_diff(wv),
                    entity: s.entity,
                    n1,
                    fp: Fingerprint::ZERO,
                });
            }
        } else {
            view.informative_into(&mut self.scratch.counts, &mut level.ecounts);
            for ec in &level.ecounts {
                if !excluded.is_empty() && excluded.contains(&ec.entity) {
                    continue;
                }
                let n1 = ec.count as u64;
                level.cand.push(Candidate {
                    score: self.lb0.lb1(n, n1),
                    imbalance: imbalance(n, n1),
                    entity: ec.entity,
                    n1,
                    fp: Fingerprint::ZERO,
                });
            }
        }
        let informative_total = level.cand.len() as u32;
        let width = level.cand.len().min(self.beam.width(true));
        let k = self.k;

        let mut best: Option<EntityId> = None;
        let mut evaluated: u32 = 0;
        {
            let mut ranked = Ranked::new(&mut level.cand);
            let mut par_considered = false;
            let mut i = 0usize;
            while i < width {
                let c = ranked.get(i);
                if c.score >= ul {
                    break;
                }
                // Fan out once a finite incumbent exists and enough
                // candidates still beat it (checked once — the incumbent
                // only tightens, so survivors only shrink).
                if ul < UNBOUNDED
                    && !par_considered
                    && self.threads > 1
                    && view.len() >= self.min_par_view
                {
                    par_considered = true;
                    let survivors = ranked.count_below(ul).min(width).saturating_sub(i);
                    if survivors >= self.min_par_survivors {
                        let (b, u, ev) = Self::parallel_phase(
                            &mut self.workers,
                            &mut self.cache,
                            &mut self.scratch,
                            &self.lb0,
                            self.weights.as_deref(),
                            self.beam,
                            self.threads,
                            k,
                            view,
                            excluded,
                            &mut ranked,
                            &mut level.seen,
                            &mut level.yes,
                            &mut level.no,
                            i,
                            width,
                            (ul, best, evaluated),
                        );
                        best = b;
                        ul = u;
                        evaluated = ev;
                        break;
                    }
                }
                evaluated += 1;
                let (cpos, cneg) = view.partition_into(
                    c.entity,
                    mem::take(&mut level.yes),
                    mem::take(&mut level.no),
                );
                debug_assert_eq!(cpos.len() as u64, c.n1);
                let l = if level.seen.insert((cpos.fingerprint(), c.n1)) {
                    let mut ctx = SearchCtx {
                        beam: self.beam,
                        lb0: &self.lb0,
                        weights: self.weights.as_deref(),
                        cache: &mut self.cache,
                        scratch: &mut self.scratch,
                    };
                    ctx.bound_children(&cpos, &cneg, k, ul, excluded, 0)
                } else {
                    None // same split as an earlier (preferred) entity
                };
                level.yes = cpos.into_storage();
                level.no = cneg.into_storage();
                if let Some(l) = l {
                    if l < ul {
                        ul = l;
                        best = Some(c.entity);
                    }
                }
                i += 1;
            }
        }
        self.scratch.put_level(0, level);

        if let Some(key) = key {
            self.cache.insert(
                key,
                CacheEntry {
                    entity: best,
                    bound: ul,
                },
            );
        }
        if self.record_stats {
            self.stats.nodes.push(NodeStats {
                collection_size: n as u32,
                informative: informative_total,
                evaluated,
            });
        }
        (best, ul, informative_total, evaluated)
    }

    /// The parallel tail of the selection loop: candidates `start..width`
    /// (in rank order) are claimed by pool workers sharing an atomic
    /// incumbent, then a deterministic replay folds the recorded outcomes
    /// exactly as the sequential scan would have. Returns the final
    /// `(best, ul, evaluated)`.
    ///
    /// Losslessness: a worker's `Evaluated(l)` is the exact `LB_k` of its
    /// candidate (pruning inside `bound_candidate` only ever *proves*
    /// bounds, it never fabricates one), so the replay can use it whatever
    /// limit the worker held. A worker's `Pruned(limit)` proves
    /// `LB_k ≥ limit`; the replay accepts it only when `limit ≥` its own
    /// running bound at that candidate's turn — otherwise the recorded
    /// proof is too weak (the worker raced ahead of the rank order) and
    /// the candidate is re-evaluated on the calling thread under the
    /// sequential limit. Both cases reproduce the sequential update
    /// exactly, so the argmin and bound are bit-identical.
    #[allow(clippy::too_many_arguments)]
    fn parallel_phase(
        workers: &mut Vec<ParWorker>,
        main_cache: &mut FxHashMap<CacheKey, CacheEntry>,
        main_scratch: &mut LookaheadScratch,
        lb0: &Lb0Table<M>,
        weights: Option<&WeightTable>,
        beam: KLpBeam,
        threads: usize,
        k: u32,
        view: &SubCollection<'_>,
        excluded: &FxHashSet<EntityId>,
        ranked: &mut Ranked<'_>,
        seen: &mut FxHashSet<(Fingerprint, u64)>,
        level_yes: &mut SubStorage,
        level_no: &mut SubStorage,
        start: usize,
        width: usize,
        state: (Cost, Option<EntityId>, u32),
    ) -> (Option<EntityId>, Cost, u32) {
        let (mut ul, mut best, mut evaluated) = state;
        ranked.sort_through(width);
        let cand = ranked.slice();

        // Duplicate-partition flags in rank order (the sequential scan
        // would skip these after counting them as evaluated). Membership
        // digests are computed per dispatched candidate here — candidates
        // carry no fingerprint, the sequential path dedups on the digest
        // its split produces.
        let dup: Vec<bool> = (start..width)
            .map(|j| !seen.insert((view.membership_fp(cand[j].entity), cand[j].n1)))
            .collect();

        let incumbent = AtomicU64::new(ul);
        let claim = AtomicUsize::new(start);
        let wcount = threads.min(width - start).max(1);
        if workers.len() < wcount {
            workers.resize_with(wcount, ParWorker::default);
        }
        let results = pool::run_workers(&mut workers[..wcount], |_, w: &mut ParWorker| {
            let mut local: Vec<(usize, ParOutcome)> = Vec::new();
            let mut level0 = w.scratch.take_level(0);
            {
                let mut ctx = SearchCtx {
                    beam,
                    lb0,
                    weights,
                    cache: &mut w.cache,
                    scratch: &mut w.scratch,
                };
                loop {
                    let idx = claim.fetch_add(1, Ordering::Relaxed);
                    if idx >= width {
                        break;
                    }
                    if dup[idx - start] {
                        continue;
                    }
                    let c = cand[idx];
                    let limit = incumbent.load(Ordering::Acquire);
                    if c.score >= limit {
                        local.push((idx, ParOutcome::Pruned(limit)));
                        continue;
                    }
                    let (l, yes, no) = ctx.bound_candidate(
                        view,
                        &c,
                        k,
                        limit,
                        excluded,
                        mem::take(&mut level0.yes),
                        mem::take(&mut level0.no),
                    );
                    level0.yes = yes;
                    level0.no = no;
                    match l {
                        Some(l) => {
                            incumbent.fetch_min(l, Ordering::AcqRel);
                            local.push((idx, ParOutcome::Evaluated(l)));
                        }
                        None => local.push((idx, ParOutcome::Pruned(limit))),
                    }
                }
            }
            w.scratch.put_level(0, level0);
            local
        });
        let mut outcomes: Vec<Option<ParOutcome>> = vec![None; width - start];
        for (idx, o) in results.into_iter().flatten() {
            outcomes[idx - start] = Some(o);
        }

        // Deterministic replay of the sequential scan.
        let mut ctx = SearchCtx {
            beam,
            lb0,
            weights,
            cache: main_cache,
            scratch: main_scratch,
        };
        for idx in start..width {
            let c = cand[idx];
            if c.score >= ul {
                break;
            }
            evaluated += 1;
            if dup[idx - start] {
                continue;
            }
            let l = match outcomes[idx - start] {
                Some(ParOutcome::Evaluated(l)) => Some(l),
                Some(ParOutcome::Pruned(limit)) if limit >= ul => None,
                // The worker's proof was recorded under a limit below the
                // sequential running bound (it raced ahead of rank order)
                // — or the candidate was skipped entirely. Re-evaluate
                // under the sequential limit.
                _ => {
                    let (l, yes, no) = ctx.bound_candidate(
                        view,
                        &c,
                        k,
                        ul,
                        excluded,
                        mem::take(level_yes),
                        mem::take(level_no),
                    );
                    *level_yes = yes;
                    *level_no = no;
                    l
                }
            };
            if let Some(l) = l {
                if l < ul {
                    ul = l;
                    best = Some(c.entity);
                }
            }
        }
        (best, ul, evaluated)
    }
}

impl<M: CostModel> SelectionStrategy for KLp<M> {
    fn name(&self) -> String {
        // The weighted suffix carries the prior's fingerprint so two
        // sessions differing only in prior are distinguishable in reports;
        // unweighted names are byte-identical to what they always were.
        let w = match &self.weights {
            Some(w) => format!(",w:{:016x}", w.fp()),
            None => String::new(),
        };
        match self.beam {
            KLpBeam::Full => format!("k-LP(k={},{}{w})", self.k, M::NAME),
            KLpBeam::Limited { q } => format!("k-LPLE(k={},q={},{}{w})", self.k, q, M::NAME),
            KLpBeam::LimitedVariable { q } => {
                format!("k-LPLVE(k={},q={},{}{w})", self.k, q, M::NAME)
            }
        }
    }

    fn select_excluding(
        &mut self,
        view: &SubCollection<'_>,
        excluded: &FxHashSet<EntityId>,
    ) -> Option<EntityId> {
        if view.len() < 2 {
            return None;
        }
        self.prepare_for(view);
        let (entity, _, _, _) = self.select_top(view, excluded);
        entity
    }

    fn select_with_detail(
        &mut self,
        view: &SubCollection<'_>,
        excluded: &FxHashSet<EntityId>,
    ) -> Option<crate::strategy::SelectionDetail> {
        if view.len() < 2 {
            return None;
        }
        self.prepare_for(view);
        let (entity, bound, informative, evaluated) = self.select_top(view, excluded);
        entity.map(|entity| crate::strategy::SelectionDetail {
            entity,
            bound,
            informative,
            evaluated,
        })
    }

    /// Reconstructs the ranked frontier of the selection `detail` came
    /// from. Pure by construction: one read-only counting pass into local
    /// buffers regenerates the candidates exactly as `select_top` did
    /// (same scores, same total rank order), and the scan horizon is
    /// replayed from the detail's `evaluated` counter — the memo, dedup
    /// state, and scratch invariants of live selection are untouched, so
    /// any number of calls leaves future selections and recorded plan
    /// nodes bit-identical.
    fn explain_last(
        &mut self,
        view: &SubCollection<'_>,
        excluded: &FxHashSet<EntityId>,
        detail: &crate::strategy::SelectionDetail,
    ) -> SelectionTrace {
        let n = view.len() as u64;
        let mut trace = SelectionTrace::default();
        if n < 2 {
            return trace;
        }
        self.lb0.ensure(n);
        let mut cand: Vec<Candidate> = Vec::new();
        if let Some(w) = self.weights.as_deref() {
            let wv = view.total_weight(w);
            let mut wstats = Vec::new();
            view.informative_weighted(&mut self.scratch.counts, &mut wstats, w);
            for s in &wstats {
                if !excluded.is_empty() && excluded.contains(&s.entity) {
                    continue;
                }
                let (n1, n2) = (s.count as u64, n - s.count as u64);
                let (w1, w2) = (s.wsum, wv - s.wsum);
                cand.push(Candidate {
                    score: combine_w(
                        wv,
                        wlb0(w1, n1, self.lb0.lb0(n1)),
                        wlb0(w2, n2, self.lb0.lb0(n2)),
                    ),
                    imbalance: (2 * w1).abs_diff(wv),
                    entity: s.entity,
                    n1,
                    fp: Fingerprint::ZERO,
                });
            }
        } else {
            let mut ecounts = Vec::new();
            view.informative_into(&mut self.scratch.counts, &mut ecounts);
            for ec in &ecounts {
                if !excluded.is_empty() && excluded.contains(&ec.entity) {
                    continue;
                }
                let n1 = ec.count as u64;
                cand.push(Candidate {
                    score: self.lb0.lb1(n, n1),
                    imbalance: imbalance(n, n1),
                    entity: ec.entity,
                    n1,
                    fp: Fingerprint::ZERO,
                });
            }
        }
        cand.sort_unstable_by_key(rank_key);
        trace.informative = cand.len() as u32;
        // A memoized selection re-ran no scan (informative/evaluated both
        // zero on a real node is impossible: the winner itself is
        // informative) — the frontier below is the memoized node's.
        trace.memo_hit = detail.informative == 0 && detail.evaluated == 0;
        trace.evaluated = detail.evaluated;

        // The sequential scan bumps `evaluated` *before* the duplicate
        // check, so exactly the first `evaluated` rank positions were
        // scanned; duplicates among them are re-identified by membership
        // digest and everything past the horizon was cut by the ranked
        // early exit / beam before its bound computation started.
        let scanned = if trace.memo_hit {
            0
        } else {
            (detail.evaluated as usize).min(cand.len())
        };
        let mut seen: FxHashSet<(Fingerprint, u64)> = FxHashSet::default();
        for (i, c) in cand.iter().enumerate() {
            let outcome = if c.entity == detail.entity {
                CandidateOutcome::Selected
            } else if i < scanned {
                if !seen.insert((view.membership_fp(c.entity), c.n1)) {
                    trace.pruned_duplicate += 1;
                    CandidateOutcome::PrunedDuplicate
                } else {
                    CandidateOutcome::Evaluated
                }
            } else {
                trace.pruned_bound += 1;
                CandidateOutcome::PrunedBound
            };
            if outcome == CandidateOutcome::Selected && i < scanned {
                // The winner's digest participates in dedup for later ranks.
                seen.insert((view.membership_fp(c.entity), c.n1));
            }
            // The winner is always recorded, even past the ranked cap.
            if trace.ranked.len() < EXPLAIN_RANKED_CAP || outcome == CandidateOutcome::Selected {
                trace.ranked.push(RankedCandidate {
                    entity: c.entity,
                    count: c.n1 as u32,
                    rank: i as u32,
                    outcome,
                });
            }
        }
        trace
    }
}

/// Unpruned k-step lookahead (the *gain-k* baseline of Esmeir &
/// Markovitch): identical bound recursion, but every informative entity is
/// fully evaluated at every level — no early exit, no upper limits, no
/// memoization. Runtime is `O(mᵏ·n)`; use only on small inputs.
pub struct GainK<M: CostModel> {
    k: u32,
    scratch: LookaheadScratch,
    _metric: std::marker::PhantomData<M>,
}

impl<M: CostModel> GainK<M> {
    /// New instance with lookahead depth `k ≥ 1`.
    pub fn new(k: u32) -> Self {
        assert!(k >= 1);
        Self {
            k,
            scratch: LookaheadScratch::new(),
            _metric: std::marker::PhantomData,
        }
    }

    /// The exact `LB_k` minimum over all entities (for equivalence tests
    /// against [`KLp`]).
    pub fn bound(&mut self, view: &SubCollection<'_>) -> Option<(EntityId, Cost)> {
        let r = self.rec(view, self.k, 0);
        r.0.map(|e| (e, r.1))
    }

    fn rec(&mut self, view: &SubCollection<'_>, k: u32, depth: usize) -> (Option<EntityId>, Cost) {
        let n = view.len() as u64;
        if n <= 1 {
            return (None, 0);
        }
        // Same arena reuse as KLp, but no memo, no dedup, no early exit —
        // the baseline must evaluate every candidate in full.
        let mut level = self.scratch.take_level(depth);
        if k <= 1 {
            // Fingerprint-free base case, same argmin key as KLp's.
            view.informative_into(&mut self.scratch.counts, &mut level.ecounts);
            let result = level
                .ecounts
                .iter()
                .map(|ec| {
                    let n1 = ec.count as u64;
                    (lb1_direct::<M>(n, n1), imbalance(n, n1), ec.entity)
                })
                .min()
                .map(|(score, _, e)| (Some(e), score))
                .unwrap_or((None, 0));
            self.scratch.put_level(depth, level);
            return result;
        }
        view.informative_with_fp(&mut self.scratch.counts, &mut level.stats);
        for s in &level.stats {
            let n1 = s.count as u64;
            level.cand.push(Candidate {
                score: lb1_direct::<M>(n, n1),
                imbalance: imbalance(n, n1),
                entity: s.entity,
                n1,
                fp: s.fp,
            });
        }
        // Same deterministic order as KLp so both make identical choices on
        // ties — but with NO early exit below.
        level.cand.sort_unstable_by_key(rank_key);

        let mut best: Option<EntityId> = None;
        let mut best_cost = UNBOUNDED;
        for i in 0..level.cand.len() {
            let c = level.cand[i];
            let n2 = n - c.n1;
            let (cpos, cneg) = view.partition_into(
                c.entity,
                mem::take(&mut level.yes),
                mem::take(&mut level.no),
            );
            let l_pos = if c.n1 == 1 {
                0
            } else {
                self.rec(&cpos, k - 1, depth + 1).1
            };
            let l_neg = if n2 == 1 {
                0
            } else {
                self.rec(&cneg, k - 1, depth + 1).1
            };
            level.yes = cpos.into_storage();
            level.no = cneg.into_storage();
            let l = M::combine(n, l_pos, l_neg);
            if l < best_cost {
                best_cost = l;
                best = Some(c.entity);
            }
        }
        self.scratch.put_level(depth, level);
        (best, best_cost)
    }
}

/// `lb1` without a table (the baseline path; see [`Lb0Table`] for why the
/// pruned search uses one).
#[inline]
fn lb1_direct<M: CostModel>(n: u64, n1: u64) -> Cost {
    crate::cost::lb1::<M>(n, n1)
}

impl<M: CostModel> SelectionStrategy for GainK<M> {
    fn name(&self) -> String {
        format!("gain-k(k={},{})", self.k, M::NAME)
    }

    fn select_excluding(
        &mut self,
        view: &SubCollection<'_>,
        excluded: &FxHashSet<EntityId>,
    ) -> Option<EntityId> {
        if view.len() < 2 {
            return None;
        }
        if excluded.is_empty() {
            return self.rec(view, self.k, 0).0;
        }
        // Exclusions are rare (the "don't know" path); filter by re-ranking.
        let mut level = self.scratch.take_level(0);
        view.informative_with_fp(&mut self.scratch.counts, &mut level.stats);
        level.stats.retain(|s| !excluded.contains(&s.entity));
        if level.stats.is_empty() {
            self.scratch.put_level(0, level);
            return None;
        }
        let n = view.len() as u64;
        let mut best: Option<(Cost, u64, EntityId)> = None;
        for i in 0..level.stats.len() {
            let s = level.stats[i];
            let e = s.entity;
            let (cpos, cneg) =
                view.partition_into(e, mem::take(&mut level.yes), mem::take(&mut level.no));
            let (n1, n2) = (cpos.len() as u64, cneg.len() as u64);
            let l_pos = if n1 <= 1 {
                0
            } else {
                self.rec(&cpos, self.k - 1, 1).1
            };
            let l_neg = if n2 <= 1 {
                0
            } else {
                self.rec(&cneg, self.k - 1, 1).1
            };
            level.yes = cpos.into_storage();
            level.no = cneg.into_storage();
            let l = M::combine(n, l_pos, l_neg);
            let key = (l, imbalance(n, n1), e);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        self.scratch.put_level(0, level);
        best.map(|(_, _, e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_tree;
    use crate::collection::Collection;
    use crate::cost::{lb1, AvgDepth, Height};
    use crate::entity::SetId;

    fn figure1() -> Collection {
        Collection::from_raw_sets(vec![
            vec![0, 1, 2, 3],
            vec![0, 3, 4],
            vec![0, 1, 2, 3, 5],
            vec![0, 1, 2, 6, 7],
            vec![0, 1, 7, 8],
            vec![0, 1, 9, 10],
            vec![0, 1, 6],
        ])
        .unwrap()
    }

    /// §4.3 worked example, collection C2: same sets except
    /// S1 = {a,b,c} and S4 = {a,b,c,d,g,h}.
    fn section_4_3_c2() -> Collection {
        Collection::from_raw_sets(vec![
            vec![0, 1, 2],
            vec![0, 3, 4],
            vec![0, 1, 2, 3, 5],
            vec![0, 1, 2, 3, 6, 7],
            vec![0, 1, 7, 8],
            vec![0, 1, 9, 10],
            vec![0, 1, 6],
        ])
        .unwrap()
    }

    /// A deterministic pseudo-random collection (splitmix-style LCG) large
    /// enough to exercise the dense/sparse postings mix and the parallel
    /// dispatch gate.
    fn pseudo_random_collection(n_sets: usize, universe: u32, seed: u64) -> Collection {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        let sets: Vec<Vec<u32>> = (0..n_sets)
            .map(|_| {
                let len = 2 + (next() % 9) as usize;
                (0..len)
                    .map(|_| (next() % universe as u64) as u32)
                    .collect()
            })
            .collect();
        Collection::from_raw_sets(sets).unwrap()
    }

    #[test]
    fn paper_example_c1_three_step_height_bound() {
        // §4.3: with H and k=3 on Figure 1's collection, LB_H3(C1, d) = 3.
        let c = figure1();
        let v = c.full_view();
        let mut klp = KLp::<Height>::new(3);
        let (e, l) = klp.bound(&v).unwrap();
        assert_eq!(l, 3, "optimal 3-step height bound");
        // c ties d on LB₁ (both split 3/4) but only reaches height 4 at
        // three steps; d roots the optimal height-3 tree of Fig 2a.
        assert_eq!(e, EntityId(3));
    }

    #[test]
    fn paper_example_c2_three_step_height_is_four() {
        // §4.3: in C2, LB_H3(C2, d) = 4 — no tree of height 3 rooted at any
        // entity... the best 3-step bound over all entities is 4.
        let c = section_4_3_c2();
        let v = c.full_view();
        let mut klp = KLp::<Height>::new(3);
        let (_, l) = klp.bound(&v).unwrap();
        assert_eq!(l, 4);
    }

    #[test]
    fn klp_equals_gaink_bound_on_small_collections() {
        // Pruning must not change the computed minimum (Lemma 4.4 safety).
        let collections = vec![
            figure1(),
            section_4_3_c2(),
            Collection::from_raw_sets(vec![
                vec![1, 2, 3, 4],
                vec![2, 3, 4, 5],
                vec![3, 4, 5, 6],
                vec![1, 3, 5],
                vec![2, 4, 6],
                vec![1, 6],
            ])
            .unwrap(),
        ];
        for c in &collections {
            let v = c.full_view();
            for k in 1..=4 {
                let ad_klp = KLp::<AvgDepth>::new(k).bound(&v).unwrap();
                let ad_ref = GainK::<AvgDepth>::new(k).bound(&v).unwrap();
                assert_eq!(ad_klp.1, ad_ref.1, "AD bound, k={k}");
                assert_eq!(ad_klp.0, ad_ref.0, "AD argmin, k={k}");
                let h_klp = KLp::<Height>::new(k).bound(&v).unwrap();
                let h_ref = GainK::<Height>::new(k).bound(&v).unwrap();
                assert_eq!(h_klp.1, h_ref.1, "H bound, k={k}");
                assert_eq!(h_klp.0, h_ref.0, "H argmin, k={k}");
            }
        }
    }

    #[test]
    fn bounds_are_monotone_in_k() {
        // Lemma 4.1: LB_k(C) is non-decreasing in k.
        let c = section_4_3_c2();
        let v = c.full_view();
        let mut prev_ad = 0;
        let mut prev_h = 0;
        for k in 1..=5 {
            let (_, ad) = KLp::<AvgDepth>::new(k).bound(&v).unwrap();
            let (_, h) = KLp::<Height>::new(k).bound(&v).unwrap();
            assert!(ad >= prev_ad, "AD k={k}: {ad} < {prev_ad}");
            assert!(h >= prev_h, "H k={k}: {h} < {prev_h}");
            prev_ad = ad;
            prev_h = h;
        }
    }

    #[test]
    fn k1_matches_lb1_of_most_even_entity() {
        let c = figure1();
        let v = c.full_view();
        let (e, l) = KLp::<AvgDepth>::new(1).bound(&v).unwrap();
        assert_eq!(e, EntityId(2)); // most even (3/4), id tie-break
        assert_eq!(l, lb1::<AvgDepth>(7, 3));
    }

    #[test]
    fn beams_cover_spectrum() {
        // With q = m the beam variants coincide with full k-LP; with q = 1
        // they still return a valid informative entity.
        let c = figure1();
        let v = c.full_view();
        let full = KLp::<AvgDepth>::new(3).bound(&v).unwrap();
        let wide = KLp::<AvgDepth>::limited(3, 1000).bound(&v).unwrap();
        assert_eq!(full, wide);
        let narrow = KLp::<AvgDepth>::limited(3, 1).bound(&v).unwrap();
        assert!(narrow.1 >= full.1, "beam bound can only be looser");
        let lve = KLp::<AvgDepth>::limited_variable(3, 10).select(&v.clone());
        assert!(lve.is_some());
    }

    #[test]
    fn cache_reuse_is_consistent() {
        let c = figure1();
        let v = c.full_view();
        let mut klp = KLp::<AvgDepth>::new(3);
        let first = klp.bound(&v).unwrap();
        assert!(klp.cache_len() > 0);
        let second = klp.bound(&v).unwrap();
        assert_eq!(first, second, "cached result must match");
    }

    #[test]
    fn cache_invalidated_across_collections() {
        let c1 = figure1();
        let c2 = section_4_3_c2();
        let mut klp = KLp::<Height>::new(3);
        let b1 = klp.bound(&c1.full_view()).unwrap();
        let b2 = klp.bound(&c2.full_view()).unwrap();
        assert_eq!(b1.1, 3);
        assert_eq!(b2.1, 4);
        // And back again — the token check must clear, not poison.
        let b1_again = klp.bound(&c1.full_view()).unwrap();
        assert_eq!(b1, b1_again);
    }

    #[test]
    fn prune_stats_record_per_selection() {
        let c = figure1();
        let v = c.full_view();
        let mut klp = KLp::<Height>::new(3).record_stats(true);
        let _ = klp.select(&v);
        assert_eq!(klp.stats().nodes.len(), 1);
        let node = klp.stats().nodes[0];
        assert_eq!(node.collection_size, 7);
        assert_eq!(node.informative, 10);
        assert!(node.evaluated >= 1);
        assert!(node.evaluated <= node.informative);
        // §4.3: after computing LB_H3(C1, c) = 3, every other entity has
        // LB_H1 ≥ 3 → pruned. Only c (and possibly d, tied LB1) evaluated.
        assert!(
            node.pruned() >= 8,
            "expected heavy pruning, evaluated={}",
            node.evaluated
        );
    }

    #[test]
    fn selects_none_on_trivial_views() {
        let c = figure1();
        let mut klp = KLp::<AvgDepth>::new(2);
        let v1 = crate::subcollection::SubCollection::from_ids(&c, vec![SetId(3)]);
        assert_eq!(klp.select(&v1), None);
    }

    #[test]
    fn exclusions_respected_and_bypass_cache() {
        let c = figure1();
        let v = c.full_view();
        let mut klp = KLp::<AvgDepth>::new(2);
        let first = klp.select(&v).unwrap();
        let mut excluded = FxHashSet::default();
        excluded.insert(first);
        let second = klp.select_excluding(&v, &excluded).unwrap();
        assert_ne!(first, second);
        // Cached positive entry for the full view must still return the
        // original pick when exclusions are lifted.
        assert_eq!(klp.select(&v), Some(first));
    }

    #[test]
    fn gaink_handles_exclusions() {
        let c = figure1();
        let v = c.full_view();
        let mut g = GainK::<AvgDepth>::new(2);
        let first = g.select(&v).unwrap();
        let mut excluded = FxHashSet::default();
        excluded.insert(first);
        let second = g.select_excluding(&v, &excluded).unwrap();
        assert_ne!(first, second);
    }

    #[test]
    fn memo_distinguishes_same_length_views() {
        // Fingerprint keys carry the whole identity of a view; two disjoint
        // same-length subviews must never share memo entries. (This is the
        // regression guard for the (fingerprint, len) key: a collision or a
        // key that ignored content would surface here as a cross-view leak.)
        let c = figure1();
        let a = SubCollection::from_ids(&c, vec![SetId(0), SetId(1), SetId(2)]);
        let b = SubCollection::from_ids(&c, vec![SetId(3), SetId(4), SetId(5)]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut warm = KLp::<AvgDepth>::new(3);
        let a_warm = warm.bound(&a);
        let b_warm = warm.bound(&b);
        assert_eq!(a_warm, KLp::<AvgDepth>::new(3).bound(&a));
        assert_eq!(b_warm, KLp::<AvgDepth>::new(3).bound(&b));
        // And in the reverse query order with the same warm cache.
        assert_eq!(warm.bound(&a), a_warm);
        assert_eq!(warm.bound(&b), b_warm);
    }

    #[test]
    fn warm_memo_negative_entries_stay_sound_across_queries() {
        // A top-level bound() fills the memo with negative entries recorded
        // under the finite upper limits of inner recursion (Algorithm 1
        // lines 1–6). Re-querying every subview at UNBOUNDED as a fresh
        // top-level question must recompute past those entries, matching a
        // cold solver exactly.
        let c = section_4_3_c2();
        let view = c.full_view();
        let mut warm = KLp::<Height>::new(3);
        let top = warm.bound(&view).unwrap();
        assert_eq!(top.1, 4);
        assert!(warm.cache_len() > 0);
        let mut scratch = crate::subcollection::CountScratch::new();
        for ec in view.informative_entities(&mut scratch) {
            let (yes, no) = view.partition(ec.entity);
            for side in [yes, no] {
                if side.len() < 2 {
                    continue;
                }
                assert_eq!(
                    warm.bound(&side),
                    KLp::<Height>::new(3).bound(&side),
                    "entity {} side of size {}",
                    ec.entity,
                    side.len()
                );
            }
        }
    }

    #[test]
    fn parallel_selection_is_bit_identical_to_sequential() {
        // The tentpole determinism claim: a forced-parallel k-LP computes
        // the same bound, argmin, and full tree (same entity at every
        // node) as the sequential path, on collections large enough for
        // real pruning races.
        for seed in [7u64, 99, 4242] {
            let c = pseudo_random_collection(90, 48, seed);
            let v = c.full_view();
            for k in 2..=3u32 {
                let seq = KLp::<AvgDepth>::new(k).with_threads(1).bound(&v);
                let par = KLp::<AvgDepth>::new(k)
                    .with_threads(4)
                    .with_parallel_gate(1, 0)
                    .bound(&v);
                assert_eq!(seq, par, "AD bound seed={seed} k={k}");
                let seq_h = KLp::<Height>::new(k).with_threads(1).bound(&v);
                let par_h = KLp::<Height>::new(k)
                    .with_threads(4)
                    .with_parallel_gate(1, 0)
                    .bound(&v);
                assert_eq!(seq_h, par_h, "H bound seed={seed} k={k}");

                let t_seq = build_tree(&v, &mut KLp::<AvgDepth>::new(k).with_threads(1)).unwrap();
                let t_par = build_tree(
                    &v,
                    &mut KLp::<AvgDepth>::new(k)
                        .with_threads(4)
                        .with_parallel_gate(1, 0),
                )
                .unwrap();
                assert_eq!(
                    t_seq.to_text(),
                    t_par.to_text(),
                    "tree divergence seed={seed} k={k}"
                );
            }
        }
    }

    #[test]
    fn parallel_prune_stats_match_sequential() {
        // The replay must reconstruct the sequential evaluated counts too.
        let c = pseudo_random_collection(80, 40, 11);
        let v = c.full_view();
        let mut seq = KLp::<AvgDepth>::new(2).with_threads(1).record_stats(true);
        let mut par = KLp::<AvgDepth>::new(2)
            .with_threads(4)
            .with_parallel_gate(1, 0)
            .record_stats(true);
        let _ = build_tree(&v, &mut seq).unwrap();
        let _ = build_tree(&v, &mut par).unwrap();
        assert_eq!(seq.stats().nodes, par.stats().nodes);
    }

    #[test]
    fn threads_knob_round_trips() {
        let klp = KLp::<AvgDepth>::new(2).with_threads(3);
        assert_eq!(klp.threads(), 3);
        let auto = KLp::<AvgDepth>::new(2).with_threads(0);
        assert_eq!(auto.threads(), setdisc_util::pool::configured_threads());
    }

    #[test]
    fn ranked_prefix_matches_full_sort() {
        let c = pseudo_random_collection(60, 32, 5);
        let v = c.full_view();
        let mut scratch = crate::subcollection::CountScratch::new();
        let mut stats = Vec::new();
        v.informative_with_fp(&mut scratch, &mut stats);
        let n = v.len() as u64;
        let mut cand: Vec<Candidate> = stats
            .iter()
            .map(|s| Candidate {
                score: lb1::<AvgDepth>(n, s.count as u64),
                imbalance: imbalance(n, s.count as u64),
                entity: s.entity,
                n1: s.count as u64,
                fp: s.fp,
            })
            .collect();
        let mut sorted = cand.clone();
        sorted.sort_unstable_by_key(rank_key);
        let below = sorted.iter().filter(|c| c.score < sorted[7].score).count();
        let mut ranked = Ranked::new(&mut cand);
        assert_eq!(ranked.count_below(sorted[7].score), below);
        for (i, want) in sorted.iter().enumerate() {
            let got = ranked.get(i);
            assert_eq!(rank_key(&got), rank_key(want), "rank {i}");
        }
    }

    #[test]
    fn names_identify_configuration() {
        assert_eq!(KLp::<AvgDepth>::new(2).name(), "k-LP(k=2,AD)");
        assert_eq!(KLp::<Height>::limited(3, 10).name(), "k-LPLE(k=3,q=10,H)");
        assert_eq!(
            KLp::<AvgDepth>::limited_variable(3, 10).name(),
            "k-LPLVE(k=3,q=10,AD)"
        );
        assert_eq!(GainK::<Height>::new(2).name(), "gain-k(k=2,H)");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_rejected() {
        let _ = KLp::<AvgDepth>::new(0);
    }

    #[test]
    fn uniform_prior_is_bit_identical_to_unweighted() {
        // The §6 losslessness claim at the strategy level: with w ≡ 1,
        // every weighted bound, limit, and ranking key equals its
        // unweighted counterpart, so selection and trees match exactly.
        use crate::weights::WeightTable;
        for seed in [3u64, 77] {
            let c = pseudo_random_collection(40, 28, seed);
            let v = c.full_view();
            let uni = Arc::new(WeightTable::uniform(c.len()));
            for k in 1..=3u32 {
                let plain = KLp::<AvgDepth>::new(k).bound(&v);
                let weighted = KLp::<AvgDepth>::new(k)
                    .with_prior(Arc::clone(&uni))
                    .bound(&v);
                assert_eq!(plain, weighted, "bound seed={seed} k={k}");
                let t_plain = build_tree(&v, &mut KLp::<AvgDepth>::new(k)).unwrap();
                let t_w = build_tree(
                    &v,
                    &mut KLp::<AvgDepth>::new(k).with_prior(Arc::clone(&uni)),
                )
                .unwrap();
                assert_eq!(t_plain.to_text(), t_w.to_text(), "tree seed={seed} k={k}");
            }
        }
    }

    #[test]
    fn skewed_prior_lowers_expected_depth() {
        // Concentrating mass on one set must pull it up the tree: the
        // weighted builder's expected depth under the prior is no worse
        // than the unweighted builder's, and strictly better somewhere.
        use crate::weights::{expected_depth, WeightTable};
        let mut improved = false;
        for hot in 0..7u32 {
            let c = figure1();
            let v = c.full_view();
            let mut raw = vec![1u64; 7];
            raw[hot as usize] = 50;
            let t = Arc::new(WeightTable::new(&raw).unwrap());
            let plain = build_tree(&v, &mut KLp::<AvgDepth>::new(2)).unwrap();
            let weighted =
                build_tree(&v, &mut KLp::<AvgDepth>::new(2).with_prior(Arc::clone(&t))).unwrap();
            let (dp, dw) = (expected_depth(&plain, &t), expected_depth(&weighted, &t));
            assert!(
                dw <= dp + 1e-9,
                "hot={hot}: weighted {dw} worse than plain {dp}"
            );
            improved |= dw + 1e-9 < dp;
        }
        assert!(improved, "no hot set ever improved expected depth");
    }

    #[test]
    fn weighted_parallel_matches_sequential() {
        use crate::weights::WeightTable;
        let c = pseudo_random_collection(80, 40, 21);
        let raw: Vec<u64> = (0..c.len() as u64).map(|i| 1 + i % 7).collect();
        let t = Arc::new(WeightTable::new(&raw).unwrap());
        let v = c.full_view();
        for k in 2..=3u32 {
            let seq = KLp::<AvgDepth>::new(k)
                .with_prior(Arc::clone(&t))
                .with_threads(1)
                .bound(&v);
            let par = KLp::<AvgDepth>::new(k)
                .with_prior(Arc::clone(&t))
                .with_threads(4)
                .with_parallel_gate(1, 0)
                .bound(&v);
            assert_eq!(seq, par, "weighted parallel divergence k={k}");
        }
    }

    #[test]
    fn weighted_name_carries_prior_fingerprint() {
        use crate::weights::WeightTable;
        let t = Arc::new(WeightTable::new(&[5, 1, 1]).unwrap());
        let name = KLp::<AvgDepth>::new(2).with_prior(Arc::clone(&t)).name();
        assert_eq!(name, format!("k-LP(k=2,AD,w:{:016x})", t.fp()));
        // Unweighted names unchanged (service labels pin these).
        assert_eq!(KLp::<AvgDepth>::new(2).name(), "k-LP(k=2,AD)");
    }
}
