//! k-step lookahead entity selection with pruning (paper §4.3–4.4).
//!
//! [`KLp`] implements Algorithm 1 (*k-Lookahead with Pruning*) plus its two
//! beam variants:
//!
//! * **k-LP** — all informative entities are candidates at every step;
//! * **k-LPLE** — only the `q` most-even entities are candidates at every
//!   step of the bound calculation (§4.4.2);
//! * **k-LPLVE** — `q` candidates at the selection level, a *single*
//!   candidate in every recursive step (§4.4.3).
//!
//! Pruning (Lemma 4.4) is applied in the two places §4.3.1 describes:
//!
//! 1. candidates are sorted by 1-step lower bound (≡ most-even first); the
//!    scan stops at the first candidate whose `LB₁` already reaches the best
//!    `LB_k` found (the paper's AFLV), pruning it and every later candidate;
//! 2. recursive calls receive exclusive upper limits (eqs. 11–14); a child
//!    that cannot beat its limit returns "pruned" and the candidate is
//!    abandoned without computing the other child.
//!
//! Results are memoized per (sub-collection, k) with the exact cache
//! semantics of Algorithm 1 lines 1–6: a negative entry `(None, b)` means
//! "no entity here has `LB_k < b`" and only short-circuits callers whose
//! limit is at most `b`. The memo key is the view's 128-bit content
//! [`Fingerprint`] paired with its length — an O(1) probe with no boxed id
//! vector per entry; see `setdisc_util::hash` for the collision bound.
//!
//! The recursion itself is allocation-free in steady state: candidate lists,
//! counting buffers, and the yes/no id buffers of every split live in a
//! depth-indexed [`LookaheadScratch`] arena, and duplicate-partition
//! candidates (entities with identical membership across the member sets)
//! are dropped using membership fingerprints computed in the counting pass —
//! *before* any partition is materialized.
//!
//! [`GainK`] is the unpruned k-step lookahead baseline in the style of
//! Esmeir & Markovitch's *gain-k* — identical recursion, no sorting-based
//! early exit, no upper limits, no memoization — used by the Figure 4
//! speedup experiments.

use crate::cost::{imbalance, lb1, Cost, CostModel, UNBOUNDED};
use crate::entity::EntityId;
use crate::strategy::SelectionStrategy;
use crate::subcollection::{Candidate, LookaheadScratch, SubCollection};
use setdisc_util::{Fingerprint, FxHashMap, FxHashSet};
use std::mem;

/// Candidate-limiting mode for [`KLp`] (§4.4).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum KLpBeam {
    /// k-LP: every informative entity is a candidate.
    Full,
    /// k-LPLE: the `q` most-even entities are candidates at every level.
    Limited {
        /// Beam width.
        q: usize,
    },
    /// k-LPLVE: `q` candidates at the selection level, one in recursion.
    LimitedVariable {
        /// Beam width at the selection level.
        q: usize,
    },
}

impl KLpBeam {
    fn width(self, is_top: bool) -> usize {
        match self {
            KLpBeam::Full => usize::MAX,
            KLpBeam::Limited { q } => q,
            KLpBeam::LimitedVariable { q } => {
                if is_top {
                    q
                } else {
                    1
                }
            }
        }
    }
}

/// Prune statistics for one selection node (one entry per decision-tree
/// node / interactive question), reproducing Table 4.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct NodeStats {
    /// `|C|` at this node.
    pub collection_size: u32,
    /// Informative entities available at this node.
    pub informative: u32,
    /// Entities whose k-step bound computation was started.
    pub evaluated: u32,
}

impl NodeStats {
    /// Entities pruned outright at this node.
    pub fn pruned(&self) -> u32 {
        self.informative - self.evaluated
    }

    /// Fraction pruned in `[0, 1]`; 0 when there was nothing to prune.
    pub fn pruned_fraction(&self) -> f64 {
        if self.informative == 0 {
            0.0
        } else {
            self.pruned() as f64 / self.informative as f64
        }
    }
}

/// Aggregated prune statistics across selection nodes.
#[derive(Clone, Debug, Default)]
pub struct PruneStats {
    /// Per-node records in selection order.
    pub nodes: Vec<NodeStats>,
}

impl PruneStats {
    /// Mean pruned fraction across nodes (Table 4 "Avg").
    pub fn avg_pruned_fraction(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes
            .iter()
            .map(NodeStats::pruned_fraction)
            .sum::<f64>()
            / self.nodes.len() as f64
    }

    /// Minimum pruned fraction across nodes (Table 4 "Min").
    pub fn min_pruned_fraction(&self) -> f64 {
        self.nodes
            .iter()
            .map(NodeStats::pruned_fraction)
            .fold(f64::INFINITY, f64::min)
            .min(1.0)
    }

    /// Drops all records.
    pub fn clear(&mut self) {
        self.nodes.clear();
    }
}

/// Memo key: `(view fingerprint, |view|, k, is_top)`. Copy-sized, so a
/// probe hashes four words instead of a boxed id slice.
type CacheKey = (Fingerprint, u32, u32, bool);

#[derive(Copy, Clone)]
struct CacheEntry {
    entity: Option<EntityId>,
    bound: Cost,
}

/// Algorithm 1: k-lookahead entity selection with pruning, generic over the
/// cost metric `M` ([`crate::AvgDepth`] or [`crate::Height`]).
pub struct KLp<M: CostModel> {
    k: u32,
    beam: KLpBeam,
    cache: FxHashMap<CacheKey, CacheEntry>,
    cache_token: u64,
    scratch: LookaheadScratch,
    stats: PruneStats,
    record_stats: bool,
    _metric: std::marker::PhantomData<M>,
}

impl<M: CostModel> KLp<M> {
    /// k-LP with the full candidate set. `k ≥ 1`; `k = 1` degenerates to the
    /// 1-step lower bound (≡ InfoGain, Lemma 4.3).
    pub fn new(k: u32) -> Self {
        Self::with_beam(k, KLpBeam::Full)
    }

    /// k-LPLE: beam of `q` most-even candidates at every level.
    pub fn limited(k: u32, q: usize) -> Self {
        Self::with_beam(k, KLpBeam::Limited { q })
    }

    /// k-LPLVE: beam of `q` at the selection level, single candidate below.
    pub fn limited_variable(k: u32, q: usize) -> Self {
        Self::with_beam(k, KLpBeam::LimitedVariable { q })
    }

    /// Fully parameterized constructor.
    pub fn with_beam(k: u32, beam: KLpBeam) -> Self {
        assert!(k >= 1, "lookahead depth must be at least 1");
        if let KLpBeam::Limited { q } | KLpBeam::LimitedVariable { q } = beam {
            assert!(q >= 1, "beam width must be at least 1");
        }
        Self {
            k,
            beam,
            cache: FxHashMap::default(),
            cache_token: 0,
            scratch: LookaheadScratch::new(),
            stats: PruneStats::default(),
            record_stats: false,
            _metric: std::marker::PhantomData,
        }
    }

    /// Enables per-node prune statistics (Table 4). Off by default: the
    /// record itself is cheap, but callers usually want a clean slate per
    /// tree, which this forces them to think about.
    pub fn record_stats(mut self, on: bool) -> Self {
        self.record_stats = on;
        self
    }

    /// Recorded prune statistics.
    pub fn stats(&self) -> &PruneStats {
        &self.stats
    }

    /// Clears recorded statistics.
    pub fn clear_stats(&mut self) {
        self.stats.clear();
    }

    /// Number of memoized (sub-collection, k) entries.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Drops the memo cache (it is also dropped automatically when the
    /// strategy is used on a different collection).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
    }

    /// Lookahead depth `k`.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The `LB_k` bound of the entity this strategy would select on `view`,
    /// in scaled cost units — the quantity eq. (8) defines.
    pub fn bound(&mut self, view: &SubCollection<'_>) -> Option<(EntityId, Cost)> {
        self.prepare_for(view);
        let excluded = FxHashSet::default();
        let (e, l) = self.klp(view, self.k, UNBOUNDED, &excluded, true, 0);
        e.map(|e| (e, l))
    }

    fn prepare_for(&mut self, view: &SubCollection<'_>) {
        let token = view.collection().token();
        if token != self.cache_token {
            self.cache.clear();
            self.cache_token = token;
        }
    }

    fn cache_key(view: &SubCollection<'_>, k: u32, is_top: bool) -> CacheKey {
        (view.fingerprint(), view.len() as u32, k, is_top)
    }

    /// The recursive body of Algorithm 1. Returns `(entity, bound)`:
    /// `entity` is the argmin when some candidate achieves `LB_k < ul`,
    /// otherwise `None` with `bound` = the tightest bound knowledge (`ul`).
    /// `depth` indexes the scratch arena (0 at the selection level).
    fn klp(
        &mut self,
        view: &SubCollection<'_>,
        k: u32,
        mut ul: Cost,
        excluded: &FxHashSet<EntityId>,
        is_top: bool,
        depth: usize,
    ) -> (Option<EntityId>, Cost) {
        let n = view.len() as u64;
        if n <= 1 {
            return (None, 0);
        }

        // Lines 1–6: cache probe. Skipped under exclusions — the cached
        // answer may be an excluded entity.
        let use_cache = excluded.is_empty();
        let key = if use_cache {
            let key = Self::cache_key(view, k, is_top);
            if let Some(entry) = self.cache.get(&key) {
                if ul <= entry.bound {
                    return (None, entry.bound);
                }
                if entry.entity.is_some() {
                    return (entry.entity, entry.bound);
                }
                // Negative entry with a smaller bound than our limit: the
                // range [entry.bound, ul) is unexplored — recompute.
            }
            Some(key)
        } else {
            None
        };

        // Candidate list, most-even first (line 11); ties by entity id.
        // One counting pass produces counts *and* membership fingerprints;
        // the buffers live in the depth-indexed arena.
        let mut level = self.scratch.take_level(depth);
        view.informative_with_fp(&mut self.scratch.counts, &mut level.stats);
        for s in &level.stats {
            if !excluded.is_empty() && excluded.contains(&s.entity) {
                continue;
            }
            let n1 = s.count as u64;
            level.cand.push(Candidate {
                score: lb1::<M>(n, n1),
                imbalance: imbalance(n, n1),
                entity: s.entity,
                n1,
                fp: s.fp,
            });
        }
        let informative_total = level.cand.len() as u32;

        // Lines 7–10: base case — the minimal-LB₁ (most even) entity. A
        // single min pass; no need to rank the losers (the beam can only
        // truncate candidates *after* the minimum, so the global argmin is
        // the beam's argmin for every beam width).
        if k <= 1 {
            let result = level
                .cand
                .iter()
                .min_by_key(|c| (c.score, c.imbalance, c.entity))
                .map(|c| (Some(c.entity), c.score))
                .unwrap_or((None, 0));
            let beam_len = level.cand.len().min(self.beam.width(is_top)) as u32;
            self.scratch.put_level(depth, level);
            if let (Some(key), (Some(_), _)) = (key, result) {
                self.cache.insert(
                    key,
                    CacheEntry {
                        entity: result.0,
                        bound: result.1,
                    },
                );
            }
            if is_top && self.record_stats {
                self.stats.nodes.push(NodeStats {
                    collection_size: n as u32,
                    informative: informative_total,
                    evaluated: informative_total.min(beam_len),
                });
            }
            return result;
        }

        // Sort by (LB₁, imbalance, id). The paper sorts by most-even
        // partitioning and notes the order coincides with LB₁ order — true
        // for the real-valued `n·log₂n` but not for the ceiling version
        // (e.g. n=35: a 16/19 split has ⌈16·log16⌉+⌈19·log19⌉ = 145 <
        // 146 = the 17/18 split's, because 16 is a power of two). Sorting by
        // LB₁ first keeps the early exit of lines 14–15 sound; imbalance
        // remains the paper's tie-break.
        level
            .cand
            .sort_unstable_by_key(|c| (c.score, c.imbalance, c.entity));
        level.cand.truncate(self.beam.width(is_top));

        let mut best: Option<EntityId> = None;
        let mut evaluated: u32 = 0;
        // Distinct entities often induce the *same* partition (entities with
        // identical membership across the candidate sets — ubiquitous when
        // sets are query outputs). Identical partitions have identical
        // bounds, and the first entity in sort order wins ties either way,
        // so duplicates can be skipped without changing the selection. The
        // membership fingerprint from the counting pass detects them here,
        // *before* the duplicate partition is ever materialized.
        for i in 0..level.cand.len() {
            let c = level.cand[i];
            // Lines 14–15: sorted early exit — prunes c and every candidate
            // after it (Lemma 4.4 with l = 1).
            if c.score >= ul {
                break;
            }
            evaluated += 1;
            if !level.seen.insert((c.fp, c.n1)) {
                continue; // same split as an earlier (preferred) entity
            }
            let (cpos, cneg) = view.partition_into(
                c.entity,
                mem::take(&mut level.yes_ids),
                mem::take(&mut level.no_ids),
            );
            debug_assert_eq!(cpos.len() as u64, c.n1);
            let l = self.bound_children(&cpos, &cneg, k, ul, excluded, depth);
            level.yes_ids = cpos.into_ids();
            level.no_ids = cneg.into_ids();
            // Lines 33–36.
            if let Some(l) = l {
                if l < ul {
                    ul = l;
                    best = Some(c.entity);
                }
            }
        }
        self.scratch.put_level(depth, level);

        if let Some(key) = key {
            self.cache.insert(
                key,
                CacheEntry {
                    entity: best,
                    bound: ul,
                },
            );
        }
        if is_top && self.record_stats {
            self.stats.nodes.push(NodeStats {
                collection_size: n as u32,
                informative: informative_total,
                evaluated,
            });
        }
        (best, ul)
    }

    /// Lines 18–32: bound both children of one candidate split, or `None`
    /// when either side is pruned against its upper limit.
    fn bound_children(
        &mut self,
        cpos: &SubCollection<'_>,
        cneg: &SubCollection<'_>,
        k: u32,
        ul: Cost,
        excluded: &FxHashSet<EntityId>,
        depth: usize,
    ) -> Option<Cost> {
        let n1 = cpos.len() as u64;
        let n2 = cneg.len() as u64;
        let n = n1 + n2;

        // Lines 18–25: bound the positive side.
        let l_pos = if n1 == 1 {
            0
        } else {
            let ul_pos = M::ul_first(ul, n, M::lb0(n2))?;
            match self.klp(cpos, k - 1, ul_pos, excluded, false, depth + 1) {
                (Some(_), l) => l,
                (None, _) => return None, // pruned (lines 24–25)
            }
        };

        // Lines 26–32: bound the negative side with the tightened limit.
        let l_neg = if n2 == 1 {
            0
        } else {
            let ul_neg = M::ul_second(ul, n, l_pos)?;
            match self.klp(cneg, k - 1, ul_neg, excluded, false, depth + 1) {
                (Some(_), l) => l,
                (None, _) => return None,
            }
        };

        Some(M::combine(n, l_pos, l_neg))
    }
}

impl<M: CostModel> SelectionStrategy for KLp<M> {
    fn name(&self) -> String {
        match self.beam {
            KLpBeam::Full => format!("k-LP(k={},{})", self.k, M::NAME),
            KLpBeam::Limited { q } => format!("k-LPLE(k={},q={},{})", self.k, q, M::NAME),
            KLpBeam::LimitedVariable { q } => {
                format!("k-LPLVE(k={},q={},{})", self.k, q, M::NAME)
            }
        }
    }

    fn select_excluding(
        &mut self,
        view: &SubCollection<'_>,
        excluded: &FxHashSet<EntityId>,
    ) -> Option<EntityId> {
        if view.len() < 2 {
            return None;
        }
        self.prepare_for(view);
        let (entity, _) = self.klp(view, self.k, UNBOUNDED, excluded, true, 0);
        entity
    }
}

/// Unpruned k-step lookahead (the *gain-k* baseline of Esmeir &
/// Markovitch): identical bound recursion, but every informative entity is
/// fully evaluated at every level — no early exit, no upper limits, no
/// memoization. Runtime is `O(mᵏ·n)`; use only on small inputs.
pub struct GainK<M: CostModel> {
    k: u32,
    scratch: LookaheadScratch,
    _metric: std::marker::PhantomData<M>,
}

impl<M: CostModel> GainK<M> {
    /// New instance with lookahead depth `k ≥ 1`.
    pub fn new(k: u32) -> Self {
        assert!(k >= 1);
        Self {
            k,
            scratch: LookaheadScratch::new(),
            _metric: std::marker::PhantomData,
        }
    }

    /// The exact `LB_k` minimum over all entities (for equivalence tests
    /// against [`KLp`]).
    pub fn bound(&mut self, view: &SubCollection<'_>) -> Option<(EntityId, Cost)> {
        let r = self.rec(view, self.k, 0);
        r.0.map(|e| (e, r.1))
    }

    fn rec(&mut self, view: &SubCollection<'_>, k: u32, depth: usize) -> (Option<EntityId>, Cost) {
        let n = view.len() as u64;
        if n <= 1 {
            return (None, 0);
        }
        // Same arena reuse as KLp, but no memo, no dedup, no early exit —
        // the baseline must evaluate every candidate in full.
        let mut level = self.scratch.take_level(depth);
        view.informative_with_fp(&mut self.scratch.counts, &mut level.stats);
        for s in &level.stats {
            let n1 = s.count as u64;
            level.cand.push(Candidate {
                score: lb1::<M>(n, n1),
                imbalance: imbalance(n, n1),
                entity: s.entity,
                n1,
                fp: s.fp,
            });
        }
        if k <= 1 {
            let result = level
                .cand
                .iter()
                .min_by_key(|c| (c.score, c.imbalance, c.entity))
                .map(|c| (Some(c.entity), c.score))
                .unwrap_or((None, 0));
            self.scratch.put_level(depth, level);
            return result;
        }
        // Same deterministic order as KLp so both make identical choices on
        // ties — but with NO early exit below.
        level
            .cand
            .sort_unstable_by_key(|c| (c.score, c.imbalance, c.entity));

        let mut best: Option<EntityId> = None;
        let mut best_cost = UNBOUNDED;
        for i in 0..level.cand.len() {
            let c = level.cand[i];
            let n2 = n - c.n1;
            let (cpos, cneg) = view.partition_into(
                c.entity,
                mem::take(&mut level.yes_ids),
                mem::take(&mut level.no_ids),
            );
            let l_pos = if c.n1 == 1 {
                0
            } else {
                self.rec(&cpos, k - 1, depth + 1).1
            };
            let l_neg = if n2 == 1 {
                0
            } else {
                self.rec(&cneg, k - 1, depth + 1).1
            };
            level.yes_ids = cpos.into_ids();
            level.no_ids = cneg.into_ids();
            let l = M::combine(n, l_pos, l_neg);
            if l < best_cost {
                best_cost = l;
                best = Some(c.entity);
            }
        }
        self.scratch.put_level(depth, level);
        (best, best_cost)
    }
}

impl<M: CostModel> SelectionStrategy for GainK<M> {
    fn name(&self) -> String {
        format!("gain-k(k={},{})", self.k, M::NAME)
    }

    fn select_excluding(
        &mut self,
        view: &SubCollection<'_>,
        excluded: &FxHashSet<EntityId>,
    ) -> Option<EntityId> {
        if view.len() < 2 {
            return None;
        }
        if excluded.is_empty() {
            return self.rec(view, self.k, 0).0;
        }
        // Exclusions are rare (the "don't know" path); filter by re-ranking.
        let mut level = self.scratch.take_level(0);
        view.informative_with_fp(&mut self.scratch.counts, &mut level.stats);
        level.stats.retain(|s| !excluded.contains(&s.entity));
        if level.stats.is_empty() {
            self.scratch.put_level(0, level);
            return None;
        }
        let n = view.len() as u64;
        let mut best: Option<(Cost, u64, EntityId)> = None;
        for i in 0..level.stats.len() {
            let s = level.stats[i];
            let e = s.entity;
            let (cpos, cneg) = view.partition_into(
                e,
                mem::take(&mut level.yes_ids),
                mem::take(&mut level.no_ids),
            );
            let (n1, n2) = (cpos.len() as u64, cneg.len() as u64);
            let l_pos = if n1 <= 1 {
                0
            } else {
                self.rec(&cpos, self.k - 1, 1).1
            };
            let l_neg = if n2 <= 1 {
                0
            } else {
                self.rec(&cneg, self.k - 1, 1).1
            };
            level.yes_ids = cpos.into_ids();
            level.no_ids = cneg.into_ids();
            let l = M::combine(n, l_pos, l_neg);
            let key = (l, imbalance(n, n1), e);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        self.scratch.put_level(0, level);
        best.map(|(_, _, e)| e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection::Collection;
    use crate::cost::{AvgDepth, Height};
    use crate::entity::SetId;

    fn figure1() -> Collection {
        Collection::from_raw_sets(vec![
            vec![0, 1, 2, 3],
            vec![0, 3, 4],
            vec![0, 1, 2, 3, 5],
            vec![0, 1, 2, 6, 7],
            vec![0, 1, 7, 8],
            vec![0, 1, 9, 10],
            vec![0, 1, 6],
        ])
        .unwrap()
    }

    /// §4.3 worked example, collection C2: same sets except
    /// S1 = {a,b,c} and S4 = {a,b,c,d,g,h}.
    fn section_4_3_c2() -> Collection {
        Collection::from_raw_sets(vec![
            vec![0, 1, 2],
            vec![0, 3, 4],
            vec![0, 1, 2, 3, 5],
            vec![0, 1, 2, 3, 6, 7],
            vec![0, 1, 7, 8],
            vec![0, 1, 9, 10],
            vec![0, 1, 6],
        ])
        .unwrap()
    }

    #[test]
    fn paper_example_c1_three_step_height_bound() {
        // §4.3: with H and k=3 on Figure 1's collection, LB_H3(C1, d) = 3.
        let c = figure1();
        let v = c.full_view();
        let mut klp = KLp::<Height>::new(3);
        let (e, l) = klp.bound(&v).unwrap();
        assert_eq!(l, 3, "optimal 3-step height bound");
        // c ties d on LB₁ (both split 3/4) but only reaches height 4 at
        // three steps; d roots the optimal height-3 tree of Fig 2a.
        assert_eq!(e, EntityId(3));
    }

    #[test]
    fn paper_example_c2_three_step_height_is_four() {
        // §4.3: in C2, LB_H3(C2, d) = 4 — no tree of height 3 rooted at any
        // entity... the best 3-step bound over all entities is 4.
        let c = section_4_3_c2();
        let v = c.full_view();
        let mut klp = KLp::<Height>::new(3);
        let (_, l) = klp.bound(&v).unwrap();
        assert_eq!(l, 4);
    }

    #[test]
    fn klp_equals_gaink_bound_on_small_collections() {
        // Pruning must not change the computed minimum (Lemma 4.4 safety).
        let collections = vec![
            figure1(),
            section_4_3_c2(),
            Collection::from_raw_sets(vec![
                vec![1, 2, 3, 4],
                vec![2, 3, 4, 5],
                vec![3, 4, 5, 6],
                vec![1, 3, 5],
                vec![2, 4, 6],
                vec![1, 6],
            ])
            .unwrap(),
        ];
        for c in &collections {
            let v = c.full_view();
            for k in 1..=4 {
                let ad_klp = KLp::<AvgDepth>::new(k).bound(&v).unwrap();
                let ad_ref = GainK::<AvgDepth>::new(k).bound(&v).unwrap();
                assert_eq!(ad_klp.1, ad_ref.1, "AD bound, k={k}");
                assert_eq!(ad_klp.0, ad_ref.0, "AD argmin, k={k}");
                let h_klp = KLp::<Height>::new(k).bound(&v).unwrap();
                let h_ref = GainK::<Height>::new(k).bound(&v).unwrap();
                assert_eq!(h_klp.1, h_ref.1, "H bound, k={k}");
                assert_eq!(h_klp.0, h_ref.0, "H argmin, k={k}");
            }
        }
    }

    #[test]
    fn bounds_are_monotone_in_k() {
        // Lemma 4.1: LB_k(C) is non-decreasing in k.
        let c = section_4_3_c2();
        let v = c.full_view();
        let mut prev_ad = 0;
        let mut prev_h = 0;
        for k in 1..=5 {
            let (_, ad) = KLp::<AvgDepth>::new(k).bound(&v).unwrap();
            let (_, h) = KLp::<Height>::new(k).bound(&v).unwrap();
            assert!(ad >= prev_ad, "AD k={k}: {ad} < {prev_ad}");
            assert!(h >= prev_h, "H k={k}: {h} < {prev_h}");
            prev_ad = ad;
            prev_h = h;
        }
    }

    #[test]
    fn k1_matches_lb1_of_most_even_entity() {
        let c = figure1();
        let v = c.full_view();
        let (e, l) = KLp::<AvgDepth>::new(1).bound(&v).unwrap();
        assert_eq!(e, EntityId(2)); // most even (3/4), id tie-break
        assert_eq!(l, lb1::<AvgDepth>(7, 3));
    }

    #[test]
    fn beams_cover_spectrum() {
        // With q = m the beam variants coincide with full k-LP; with q = 1
        // they still return a valid informative entity.
        let c = figure1();
        let v = c.full_view();
        let full = KLp::<AvgDepth>::new(3).bound(&v).unwrap();
        let wide = KLp::<AvgDepth>::limited(3, 1000).bound(&v).unwrap();
        assert_eq!(full, wide);
        let narrow = KLp::<AvgDepth>::limited(3, 1).bound(&v).unwrap();
        assert!(narrow.1 >= full.1, "beam bound can only be looser");
        let lve = KLp::<AvgDepth>::limited_variable(3, 10).select(&v.clone());
        assert!(lve.is_some());
    }

    #[test]
    fn cache_reuse_is_consistent() {
        let c = figure1();
        let v = c.full_view();
        let mut klp = KLp::<AvgDepth>::new(3);
        let first = klp.bound(&v).unwrap();
        assert!(klp.cache_len() > 0);
        let second = klp.bound(&v).unwrap();
        assert_eq!(first, second, "cached result must match");
    }

    #[test]
    fn cache_invalidated_across_collections() {
        let c1 = figure1();
        let c2 = section_4_3_c2();
        let mut klp = KLp::<Height>::new(3);
        let b1 = klp.bound(&c1.full_view()).unwrap();
        let b2 = klp.bound(&c2.full_view()).unwrap();
        assert_eq!(b1.1, 3);
        assert_eq!(b2.1, 4);
        // And back again — the token check must clear, not poison.
        let b1_again = klp.bound(&c1.full_view()).unwrap();
        assert_eq!(b1, b1_again);
    }

    #[test]
    fn prune_stats_record_per_selection() {
        let c = figure1();
        let v = c.full_view();
        let mut klp = KLp::<Height>::new(3).record_stats(true);
        let _ = klp.select(&v);
        assert_eq!(klp.stats().nodes.len(), 1);
        let node = klp.stats().nodes[0];
        assert_eq!(node.collection_size, 7);
        assert_eq!(node.informative, 10);
        assert!(node.evaluated >= 1);
        assert!(node.evaluated <= node.informative);
        // §4.3: after computing LB_H3(C1, c) = 3, every other entity has
        // LB_H1 ≥ 3 → pruned. Only c (and possibly d, tied LB1) evaluated.
        assert!(
            node.pruned() >= 8,
            "expected heavy pruning, evaluated={}",
            node.evaluated
        );
    }

    #[test]
    fn selects_none_on_trivial_views() {
        let c = figure1();
        let mut klp = KLp::<AvgDepth>::new(2);
        let v1 = crate::subcollection::SubCollection::from_ids(&c, vec![SetId(3)]);
        assert_eq!(klp.select(&v1), None);
    }

    #[test]
    fn exclusions_respected_and_bypass_cache() {
        let c = figure1();
        let v = c.full_view();
        let mut klp = KLp::<AvgDepth>::new(2);
        let first = klp.select(&v).unwrap();
        let mut excluded = FxHashSet::default();
        excluded.insert(first);
        let second = klp.select_excluding(&v, &excluded).unwrap();
        assert_ne!(first, second);
        // Cached positive entry for the full view must still return the
        // original pick when exclusions are lifted.
        assert_eq!(klp.select(&v), Some(first));
    }

    #[test]
    fn gaink_handles_exclusions() {
        let c = figure1();
        let v = c.full_view();
        let mut g = GainK::<AvgDepth>::new(2);
        let first = g.select(&v).unwrap();
        let mut excluded = FxHashSet::default();
        excluded.insert(first);
        let second = g.select_excluding(&v, &excluded).unwrap();
        assert_ne!(first, second);
    }

    #[test]
    fn memo_distinguishes_same_length_views() {
        // Fingerprint keys carry the whole identity of a view; two disjoint
        // same-length subviews must never share memo entries. (This is the
        // regression guard for the (fingerprint, len) key: a collision or a
        // key that ignored content would surface here as a cross-view leak.)
        let c = figure1();
        let a = SubCollection::from_ids(&c, vec![SetId(0), SetId(1), SetId(2)]);
        let b = SubCollection::from_ids(&c, vec![SetId(3), SetId(4), SetId(5)]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        let mut warm = KLp::<AvgDepth>::new(3);
        let a_warm = warm.bound(&a);
        let b_warm = warm.bound(&b);
        assert_eq!(a_warm, KLp::<AvgDepth>::new(3).bound(&a));
        assert_eq!(b_warm, KLp::<AvgDepth>::new(3).bound(&b));
        // And in the reverse query order with the same warm cache.
        assert_eq!(warm.bound(&a), a_warm);
        assert_eq!(warm.bound(&b), b_warm);
    }

    #[test]
    fn warm_memo_negative_entries_stay_sound_across_queries() {
        // A top-level bound() fills the memo with negative entries recorded
        // under the finite upper limits of inner recursion (Algorithm 1
        // lines 1–6). Re-querying every subview at UNBOUNDED as a fresh
        // top-level question must recompute past those entries, matching a
        // cold solver exactly.
        let c = section_4_3_c2();
        let view = c.full_view();
        let mut warm = KLp::<Height>::new(3);
        let top = warm.bound(&view).unwrap();
        assert_eq!(top.1, 4);
        assert!(warm.cache_len() > 0);
        let mut scratch = crate::subcollection::CountScratch::new();
        for ec in view.informative_entities(&mut scratch) {
            let (yes, no) = view.partition(ec.entity);
            for side in [yes, no] {
                if side.len() < 2 {
                    continue;
                }
                assert_eq!(
                    warm.bound(&side),
                    KLp::<Height>::new(3).bound(&side),
                    "entity {} side of size {}",
                    ec.entity,
                    side.len()
                );
            }
        }
    }

    #[test]
    fn names_identify_configuration() {
        assert_eq!(KLp::<AvgDepth>::new(2).name(), "k-LP(k=2,AD)");
        assert_eq!(KLp::<Height>::limited(3, 10).name(), "k-LPLE(k=3,q=10,H)");
        assert_eq!(
            KLp::<AvgDepth>::limited_variable(3, 10).name(),
            "k-LPLVE(k=3,q=10,AD)"
        );
        assert_eq!(GainK::<Height>::new(2).name(), "gain-k(k=2,H)");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_k_rejected() {
        let _ = KLp::<AvgDepth>::new(0);
    }
}
