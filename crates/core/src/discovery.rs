//! Interactive set discovery — Algorithm 2 of the paper.
//!
//! A [`Session`] filters the collection to the supersets of the user's
//! initial examples, then repeatedly asks the entity chosen by the selection
//! strategy Υ and narrows the candidates with each answer, until a single
//! set remains or a halt condition Γ (question budget, caller-controlled
//! stepping) intervenes.
//!
//! The state machine itself lives in [`crate::engine`]: [`Session`] is the
//! borrowed-collection instantiation of the sans-IO [`Engine`], and
//! [`crate::engine::OwnedSession`] is the `Arc`-backed `'static` one the
//! service layer parks in its session table. This module keeps the answer
//! *sources*: [`SimulatedOracle`] answers from a known target (the
//! evaluation protocol of §5); [`NoisyOracle`] flips answers with a
//! configured probability (§6 "possibility of errors"); "don't know"
//! answers (§6 "unanswered questions") exclude the entity and re-select, as
//! the paper prescribes. Oracles are drivers *on top of* the engine — no
//! oracle appears inside the question/answer loop.

use crate::collection::Collection;
use crate::engine::Engine;
use crate::entity::{EntityId, SetId};
use crate::set::EntitySet;
use setdisc_util::Rng;

/// A user's reply to a membership question.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Answer {
    /// The entity is in the target set.
    Yes,
    /// The entity is not in the target set.
    No,
    /// The user cannot tell (§6) — the entity is excluded from future
    /// questions and the candidates are left unchanged.
    Unknown,
}

/// Source of answers to membership questions.
pub trait Oracle {
    /// Answers "is `entity` in the target set?".
    fn answer(&mut self, entity: EntityId) -> Answer;
}

/// Answers truthfully from a known target set (the simulated user of §5).
pub struct SimulatedOracle<'a> {
    target: &'a EntitySet,
}

impl<'a> SimulatedOracle<'a> {
    /// Oracle for the given target.
    pub fn new(target: &'a EntitySet) -> Self {
        Self { target }
    }
}

impl Oracle for SimulatedOracle<'_> {
    fn answer(&mut self, entity: EntityId) -> Answer {
        if self.target.contains(entity) {
            Answer::Yes
        } else {
            Answer::No
        }
    }
}

/// Answers from a target but flips each answer independently with
/// probability `error_rate` (failure-injection for the §6 recovery
/// extension).
pub struct NoisyOracle<'a> {
    target: &'a EntitySet,
    error_rate: f64,
    rng: Rng,
    /// Number of answers flipped so far.
    pub flips: usize,
}

impl<'a> NoisyOracle<'a> {
    /// Oracle flipping answers with probability `error_rate`.
    pub fn new(target: &'a EntitySet, error_rate: f64, seed: u64) -> Self {
        Self {
            target,
            error_rate,
            rng: Rng::new(seed),
            flips: 0,
        }
    }
}

impl Oracle for NoisyOracle<'_> {
    fn answer(&mut self, entity: EntityId) -> Answer {
        let truth = self.target.contains(entity);
        let lie = self.rng.chance(self.error_rate);
        if lie {
            self.flips += 1;
        }
        if truth != lie {
            Answer::Yes
        } else {
            Answer::No
        }
    }
}

/// An oracle that can additionally confirm a final answer — e.g. a user
/// shown the discovered set who accepts or rejects it. The confirmation is
/// the §6 detection signal for erroneous answers: a lie never contradicts
/// the search on its own (see the module tests), so drivers of
/// backtracking-enabled engines confirm each resolution and call
/// [`Engine::reject`] on a denial.
pub trait ConfirmingOracle: Oracle {
    /// "Is this your set?" for the resolved candidate.
    fn confirm(&mut self, set: SetId) -> bool;
}

/// A [`SimulatedOracle`] that also confirms, with an explicit list of
/// question indices to answer incorrectly (deterministic failure injection
/// — the i-th *question* gets flipped). The error-injection driver for the
/// §6 backtracking tests and benches.
pub struct FaultInjectingOracle<'a> {
    target: &'a EntitySet,
    target_id: SetId,
    flip_questions: Vec<usize>,
    asked: usize,
    /// Number of answers actually flipped.
    pub flips_done: usize,
}

impl<'a> FaultInjectingOracle<'a> {
    /// Oracle for `target` (with its id) flipping the listed question
    /// indices (0-based).
    pub fn new(target: &'a EntitySet, target_id: SetId, flip_questions: Vec<usize>) -> Self {
        Self {
            target,
            target_id,
            flip_questions,
            asked: 0,
            flips_done: 0,
        }
    }
}

impl Oracle for FaultInjectingOracle<'_> {
    fn answer(&mut self, entity: EntityId) -> Answer {
        let truth = self.target.contains(entity);
        let flip = self.flip_questions.contains(&self.asked);
        self.asked += 1;
        if flip {
            self.flips_done += 1;
        }
        if truth != flip {
            Answer::Yes
        } else {
            Answer::No
        }
    }
}

impl ConfirmingOracle for FaultInjectingOracle<'_> {
    fn confirm(&mut self, set: SetId) -> bool {
        set == self.target_id
    }
}

/// Answers truthfully but replies [`Answer::Unknown`] with probability
/// `unknown_rate` (the §6 "unanswered questions" scenario).
pub struct UnsureOracle<'a> {
    target: &'a EntitySet,
    unknown_rate: f64,
    rng: Rng,
}

impl<'a> UnsureOracle<'a> {
    /// Oracle that shrugs with probability `unknown_rate`.
    pub fn new(target: &'a EntitySet, unknown_rate: f64, seed: u64) -> Self {
        Self {
            target,
            unknown_rate,
            rng: Rng::new(seed),
        }
    }
}

impl Oracle for UnsureOracle<'_> {
    fn answer(&mut self, entity: EntityId) -> Answer {
        if self.rng.chance(self.unknown_rate) {
            Answer::Unknown
        } else if self.target.contains(entity) {
            Answer::Yes
        } else {
            Answer::No
        }
    }
}

/// Outcome of a discovery run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// Sets consistent with every answer (one element = discovered).
    pub candidates: Vec<SetId>,
    /// Yes/no questions answered (Unknown replies are not counted, matching
    /// the paper's cost model where a question's cost is a *decision*).
    pub questions: usize,
    /// Unknown replies received.
    pub unknowns: usize,
}

impl Outcome {
    /// The discovered set when exactly one candidate remains.
    pub fn discovered(&self) -> Option<SetId> {
        match self.candidates.as_slice() {
            [single] => Some(*single),
            _ => None,
        }
    }
}

/// An interactive discovery session (Algorithm 2) borrowing its collection —
/// the scoped instantiation of the sans-IO [`Engine`]. All stepping verbs
/// (`next_question` / `answer` / `outcome`) and the oracle drivers (`run` /
/// `run_bounded`) are the engine's; see [`crate::engine`] for the owning
/// `Arc`-backed variant used by concurrent services.
pub type Session<'c, S> = Engine<&'c Collection, S>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AvgDepth;
    use crate::lookahead::KLp;
    use crate::strategy::{InfoGain, MostEven};

    fn figure1() -> Collection {
        Collection::from_raw_sets(vec![
            vec![0, 1, 2, 3],
            vec![0, 3, 4],
            vec![0, 1, 2, 3, 5],
            vec![0, 1, 2, 6, 7],
            vec![0, 1, 7, 8],
            vec![0, 1, 9, 10],
            vec![0, 1, 6],
        ])
        .unwrap()
    }

    #[test]
    fn discovers_every_set_from_empty_initial() {
        let c = figure1();
        for (id, target) in c.iter() {
            let mut session = Session::new(&c, &[], KLp::<AvgDepth>::new(2));
            let outcome = session.run(&mut SimulatedOracle::new(target)).unwrap();
            assert_eq!(outcome.discovered(), Some(id), "target {id}");
            assert!(outcome.questions <= 6, "worst case is n-1");
        }
    }

    #[test]
    fn initial_examples_narrow_the_start() {
        let c = figure1();
        // I = {d} → candidates {S1, S2, S3}; discovering S2 takes ≤ 2 questions.
        let target = c.set(SetId(1)).clone();
        let mut session = Session::new(&c, &[EntityId(3)], MostEven::new());
        assert_eq!(session.candidate_count(), 3);
        let outcome = session.run(&mut SimulatedOracle::new(&target)).unwrap();
        assert_eq!(outcome.discovered(), Some(SetId(1)));
        assert!(outcome.questions <= 2);
    }

    #[test]
    fn fully_specified_initial_set_needs_no_questions() {
        let c = figure1();
        // I = {e} uniquely identifies S2 = {a,d,e}.
        let target = c.set(SetId(1)).clone();
        let mut session = Session::new(&c, &[EntityId(4)], MostEven::new());
        let outcome = session.run(&mut SimulatedOracle::new(&target)).unwrap();
        assert_eq!(outcome.questions, 0);
        assert_eq!(outcome.discovered(), Some(SetId(1)));
    }

    #[test]
    fn unsatisfiable_initial_yields_empty() {
        let c = figure1();
        let session = Session::new(&c, &[EntityId(4), EntityId(8)], MostEven::new());
        assert!(session.candidate_ids().is_empty());
        assert!(session.is_resolved());
    }

    #[test]
    fn question_budget_halts_early() {
        let c = figure1();
        let target = c.set(SetId(4)).clone();
        let mut session = Session::new(&c, &[], InfoGain::new());
        let outcome = session
            .run_bounded(&mut SimulatedOracle::new(&target), 1)
            .unwrap();
        assert_eq!(outcome.questions, 1);
        assert!(outcome.candidates.len() > 1, "halted before resolution");
        assert!(outcome.candidates.contains(&SetId(4)), "target survives");
    }

    #[test]
    fn unknown_answers_exclude_entities_and_still_resolve() {
        let c = figure1();
        let target = c.set(SetId(5)).clone(); // S6 = {a,b,j,k}
        let mut session = Session::new(&c, &[], MostEven::new());
        // Shrug on the first two proposed entities, then answer honestly.
        let e1 = session.next_question().unwrap();
        session.answer(e1, Answer::Unknown);
        let e2 = session.next_question().unwrap();
        assert_ne!(e1, e2, "excluded entity must not be re-asked");
        session.answer(e2, Answer::Unknown);
        let outcome = session.run(&mut SimulatedOracle::new(&target)).unwrap();
        assert_eq!(outcome.discovered(), Some(SetId(5)));
        assert_eq!(outcome.unknowns, 2);
        let asked: Vec<EntityId> = session.history().iter().map(|&(e, _)| e).collect();
        assert_eq!(asked.iter().filter(|&&e| e == e1).count(), 1);
    }

    #[test]
    fn all_entities_unknown_returns_survivors() {
        let c = Collection::from_raw_sets(vec![vec![0, 1], vec![0, 2]]).unwrap();
        let target = c.set(SetId(0)).clone();
        let mut session = Session::new(&c, &[], MostEven::new());
        struct AlwaysUnknown;
        impl Oracle for AlwaysUnknown {
            fn answer(&mut self, _: EntityId) -> Answer {
                Answer::Unknown
            }
        }
        let _ = &target;
        let outcome = session.run(&mut AlwaysUnknown).unwrap();
        assert_eq!(outcome.candidates.len(), 2, "search cannot resolve");
        assert_eq!(outcome.questions, 0);
        assert_eq!(outcome.unknowns, 2);
    }

    #[test]
    fn noisy_answers_resolve_to_the_wrong_set_silently() {
        // Within run() every question is informative for the *current*
        // candidates, so both answer branches are non-empty and the session
        // always resolves — a lying oracle therefore produces a wrong set
        // rather than a contradiction. This is exactly the failure mode
        // the §6 confirmation step ([`ConfirmingOracle`] plus the engine's
        // backtracking mode) exists to detect and repair.
        let c = figure1();
        let target = c.set(SetId(0)).clone();
        let mut session = Session::new(&c, &[], MostEven::new());
        let mut oracle = NoisyOracle::new(&target, 1.0, 0);
        let outcome = session.run(&mut oracle).unwrap();
        let found = outcome.discovered().expect("always resolves");
        assert_ne!(found, SetId(0), "all-lies cannot find the true target");
        assert!(oracle.flips > 0);
    }

    #[test]
    fn manually_applied_inconsistent_answers_empty_the_candidates() {
        // The contradiction error is reachable through the stepping API,
        // where callers may apply answers about arbitrary entities.
        let c = figure1();
        let mut session = Session::new(&c, &[], MostEven::new());
        session.answer(EntityId(4), Answer::Yes); // e → only S2
        assert_eq!(session.candidate_ids(), &[SetId(1)]);
        session.answer(EntityId(8), Answer::Yes); // i → S5: contradiction
        assert!(session.candidate_ids().is_empty());
        assert_eq!(session.outcome().candidates.len(), 0);
    }

    #[test]
    fn noisy_oracle_with_zero_rate_is_truthful() {
        let c = figure1();
        let target = c.set(SetId(3)).clone();
        let mut session = Session::new(&c, &[], MostEven::new());
        let mut oracle = NoisyOracle::new(&target, 0.0, 1);
        let outcome = session.run(&mut oracle).unwrap();
        assert_eq!(outcome.discovered(), Some(SetId(3)));
        assert_eq!(oracle.flips, 0);
    }

    #[test]
    fn unsure_oracle_resolves_despite_shrugs() {
        let c = figure1();
        let target = c.set(SetId(2)).clone();
        let mut session = Session::new(&c, &[], MostEven::new());
        let mut oracle = UnsureOracle::new(&target, 0.3, 42);
        let outcome = session.run(&mut oracle).unwrap();
        // With shrugs the session may end unresolved only if every
        // informative entity got excluded — not the case at rate 0.3 here.
        assert_eq!(outcome.discovered(), Some(SetId(2)));
    }

    #[test]
    fn questions_match_tree_depth_for_same_strategy() {
        // Online discovery asks exactly the questions on the offline tree's
        // root-to-leaf path when both use the same deterministic strategy
        // (the paper's tree-construction/discovery duality, §4.5).
        let c = figure1();
        let v = c.full_view();
        let tree = crate::builder::build_tree(&v, &mut KLp::<AvgDepth>::new(2)).unwrap();
        for (id, target) in c.iter() {
            let mut session = Session::new(&c, &[], KLp::<AvgDepth>::new(2));
            let outcome = session.run(&mut SimulatedOracle::new(target)).unwrap();
            assert_eq!(outcome.discovered(), Some(id));
            assert_eq!(
                outcome.questions,
                tree.depth_of(id).unwrap() as usize,
                "set {id}"
            );
        }
    }

    #[test]
    fn outcome_snapshot_midway() {
        let c = figure1();
        let mut session = Session::new(&c, &[], MostEven::new());
        let e = session.next_question().unwrap();
        session.answer(e, Answer::No);
        let outcome = session.outcome();
        assert_eq!(outcome.questions, 1);
        assert!(!outcome.candidates.is_empty());
        assert_eq!(outcome.discovered(), None);
    }
}
