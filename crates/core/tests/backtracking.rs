//! §6 erroneous answers, property-tested: sessions with 1–2 injected lies
//! at random depths, across random collections and every strategy family,
//! must still converge to the true target once backtracking is enabled —
//! within the §6 replay bound — while the same lies *without* backtracking
//! reproduce the closed-session failure. Includes the regression for the
//! pre-§6 bug where an empty candidate set silently ended the session.

use proptest::prelude::*;
use setdisc_core::collection::Collection;
use setdisc_core::cost::{AvgDepth, Height};
use setdisc_core::discovery::FaultInjectingOracle;
use setdisc_core::engine::Engine;
use setdisc_core::entity::{EntityId, SetId};
use setdisc_core::error::SetDiscError;
use setdisc_core::lookahead::KLp;
use setdisc_core::strategy::{InfoGain, MostEven, SelectionStrategy};
use setdisc_core::Answer;

type DynStrategy = Box<dyn SelectionStrategy>;

/// Strategy families under test — backtracking is an engine-level
/// mechanism and must recover under every one of them.
const CONFIGS: usize = 8;

fn make_strategy(cfg: usize) -> DynStrategy {
    match cfg {
        0 => Box::new(KLp::<AvgDepth>::new(1)),
        1 => Box::new(KLp::<AvgDepth>::new(2)),
        2 => Box::new(KLp::<Height>::new(2)),
        3 => Box::new(KLp::<AvgDepth>::new(3)),
        4 => Box::new(KLp::<AvgDepth>::limited(2, 4)),
        5 => Box::new(KLp::<Height>::limited_variable(3, 3)),
        6 => Box::new(MostEven::new()),
        7 => Box::new(InfoGain::new()),
        other => panic!("no config {other}"),
    }
}

fn collection_from_sets(raw: Vec<std::collections::BTreeSet<u32>>) -> Option<Collection> {
    let c = Collection::from_raw_sets(raw.into_iter().map(|s| s.into_iter().collect()).collect())
        .ok()?;
    (c.len() >= 2).then_some(c)
}

/// Clean-run question count for `target` under `cfg`, or `None` when the
/// truthful session cannot single it out (indistinguishable survivors).
fn clean_questions(c: &Collection, cfg: usize, target: SetId) -> Option<usize> {
    let mut engine = Engine::new(c, &[], make_strategy(cfg));
    let mut oracle = FaultInjectingOracle::new(c.set(target), target, vec![]);
    let outcome = engine.run(&mut oracle).ok()?;
    (outcome.discovered() == Some(target)).then_some(outcome.questions as usize)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// 1–2 lies at random depths: a backtracking engine driven by the §6
    /// confirm-and-reject loop recovers the true target within the replay
    /// bound, while the identical lies without backtracking either close
    /// the session on contradiction or resolve to a wrong set.
    #[test]
    fn injected_lies_recover_within_the_replay_bound(
        raw in prop::collection::vec(
            prop::collection::btree_set(0u32..24, 1usize..7),
            4usize..18,
        ),
        cfg in 0usize..CONFIGS,
        target_pick in 0usize..64,
        depth_picks in prop::collection::vec(0usize..64, 1usize..3),
    ) {
        let Some(c) = collection_from_sets(raw) else {
            return Ok(()); // degenerate after dedup
        };
        let target = SetId((target_pick % c.len()) as u32);
        let Some(clean_q) = clean_questions(&c, cfg, target) else {
            return Ok(()); // target not identifiable even truthfully
        };
        if clean_q == 0 {
            return Ok(()); // resolved before the first question — no depth to lie at
        }
        // Random, distinct lie depths inside the clean transcript.
        let mut flips: Vec<usize> = depth_picks.iter().map(|d| d % clean_q).collect();
        flips.sort_unstable();
        flips.dedup();

        // §6 replay bound: every candidate flip-set hypothesis costs at
        // most one replay of the (clean-length) transcript, and with f
        // lies the engine examines at most Q singles + Q² pairs over the
        // Q ≤ clean_q + f questions it has answered. Generous but finite —
        // a regression that loops or thrashes hypotheses blows past it.
        let q = clean_q + flips.len();
        let hypotheses = if flips.len() == 1 { q } else { q * q };
        let budget = (q + 1) * (hypotheses + 1);

        let mut engine = Engine::new(&c, &[], make_strategy(cfg));
        engine.set_backtracking(true);
        let mut oracle = FaultInjectingOracle::new(c.set(target), target, flips.clone());
        let outcome = engine
            .run_confirming(&mut oracle, budget)
            .expect("backtracking session must never close on a contradiction");
        prop_assert_eq!(
            outcome.discovered(),
            Some(target),
            "cfg {} flips {:?} failed to recover (clean {} questions)",
            cfg, &flips, clean_q
        );
        prop_assert!(oracle.flips_done >= 1, "no injected lie actually fired");
        prop_assert!(engine.backtracks() >= 1, "recovery must have backtracked");
        prop_assert!(
            (outcome.questions as usize) <= budget,
            "{} questions blew the §6 replay bound {}",
            outcome.questions, budget
        );

        // The same lies without backtracking never recover: either the
        // contradiction closes the session, or it resolves to a wrong set.
        let mut plain = Engine::new(&c, &[], make_strategy(cfg));
        let mut oracle = FaultInjectingOracle::new(c.set(target), target, flips.clone());
        match plain.run_confirming(&mut oracle, budget) {
            Err(SetDiscError::ContradictoryAnswers { .. }) => {}
            Ok(outcome) => prop_assert!(
                outcome.discovered() != Some(target),
                "a lie cannot be survived without backtracking; \
                 cfg {} flips {:?} discovered the target anyway",
                cfg, &flips
            ),
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
        }
    }
}

/// Figure 1 of the paper. Entity 4 (`e`) appears only in S2, entity 5
/// (`f`) only in S3 — affirming both is the canonical contradiction.
fn figure1() -> Collection {
    Collection::from_raw_sets(vec![
        vec![0, 1, 2, 3],
        vec![0, 3, 4],
        vec![0, 1, 2, 3, 5],
        vec![0, 1, 2, 6, 7],
        vec![0, 1, 7, 8],
        vec![0, 1, 9, 10],
        vec![0, 1, 6],
    ])
    .unwrap()
}

/// Regression: pre-§6, answers that contradicted every candidate left an
/// empty candidate set and the session just closed. With backtracking off
/// that is still the (reported, not silent) behavior; with backtracking on
/// the engine must flip the unconfident answer and keep the session alive.
#[test]
fn contradiction_closes_without_backtracking_and_recovers_with_it() {
    let c = figure1();

    let mut plain = Engine::new(&c, &[], MostEven::new());
    plain.answer_full(EntityId(4), Answer::Yes, false); // e → only S2 survives
    plain.answer_full(EntityId(5), Answer::Yes, true); // f → contradiction
    assert_eq!(plain.candidate_count(), 0, "no backtracking: session dead");
    assert_eq!(plain.backtracks(), 0);

    let mut recovering = Engine::new(&c, &[], MostEven::new());
    recovering.set_backtracking(true);
    recovering.answer_full(EntityId(4), Answer::Yes, false);
    recovering.answer_full(EntityId(5), Answer::Yes, true);
    assert_eq!(
        recovering.candidate_count(),
        1,
        "backtracking must flip the unconfident lie and survive"
    );
    assert_eq!(recovering.backtracks(), 1);
    assert_eq!(
        recovering.outcome().discovered(),
        Some(SetId(2)),
        "flipping the lie leaves S3 (the f-owner) as the sole candidate"
    );
}

/// A lie that never contradicts resolves to a *wrong* set; the §6
/// confirm-and-reject loop turns the denial into a backtrack and still
/// lands on the truth.
#[test]
fn confirmation_denial_triggers_recovery_on_figure1() {
    let c = figure1();
    for target in 0..7u32 {
        let target = SetId(target);
        let Some(clean_q) = clean_questions(&c, 1, target) else {
            continue;
        };
        for lie_at in 0..clean_q {
            let mut engine = Engine::new(&c, &[], KLp::<AvgDepth>::new(2));
            engine.set_backtracking(true);
            let mut oracle = FaultInjectingOracle::new(c.set(target), target, vec![lie_at]);
            let outcome = engine
                .run_confirming(&mut oracle, 10_000)
                .expect("recoverable");
            assert_eq!(
                outcome.discovered(),
                Some(target),
                "lie at {lie_at} for target {target} not recovered"
            );
            assert!(engine.backtracks() >= 1);
        }
    }
}
