//! Cross-crate integration tests: synthetic generators → core algorithms →
//! discovery, and the relational substrate → candidate sets → discovery.

use interactive_set_discovery::core::builder::build_tree;
use interactive_set_discovery::core::cost::{AvgDepth, Height};
use interactive_set_discovery::core::discovery::{Session, SimulatedOracle};
use interactive_set_discovery::core::lookahead::{GainK, KLp};
use interactive_set_discovery::core::strategy::{InfoGain, MostEven, SelectionStrategy};
use interactive_set_discovery::core::{EntitySet, SubCollection};
use interactive_set_discovery::relation::candgen::{generate_candidates, ReferenceValues};
use interactive_set_discovery::relation::people::people_table_sized;
use interactive_set_discovery::relation::targets::target_queries;
use interactive_set_discovery::synth::copyadd::{generate_copy_add, CopyAddConfig};
use interactive_set_discovery::synth::webtables::{self, WebTablesConfig};

#[test]
fn synthetic_collection_tree_discovers_every_set() {
    let collection = generate_copy_add(&CopyAddConfig {
        n_sets: 120,
        size_range: (8, 14),
        overlap: 0.85,
        seed: 1,
    });
    let view = collection.full_view();
    let mut strategy = KLp::<AvgDepth>::new(2);
    let tree = build_tree(&view, &mut strategy).expect("tree");
    tree.validate(&view).expect("valid tree");
    assert_eq!(tree.n_leaves(), collection.len());
    // Walking the tree with each set as the target lands on its own leaf.
    for (id, set) in collection.iter() {
        let (questions, found) = tree.descend(&collection, set);
        assert_eq!(found, id);
        assert!((questions as usize) < collection.len());
    }
}

#[test]
fn online_session_equals_offline_tree_depth() {
    // Algorithm 2 with strategy Υ asks exactly the questions on the
    // root-to-leaf path of the Algorithm 3 tree built with the same Υ.
    let collection = generate_copy_add(&CopyAddConfig {
        n_sets: 60,
        size_range: (6, 10),
        overlap: 0.8,
        seed: 2,
    });
    let view = collection.full_view();
    let tree = build_tree(&view, &mut InfoGain::new()).expect("tree");
    for (id, set) in collection.iter() {
        let mut session = Session::over(view.clone(), InfoGain::new());
        let outcome = session.run(&mut SimulatedOracle::new(set)).expect("ok");
        assert_eq!(outcome.discovered(), Some(id));
        assert_eq!(outcome.questions, tree.depth_of(id).unwrap() as usize);
    }
}

#[test]
fn webtables_seed_queries_discover_columns() {
    let corpus = webtables::generate(&WebTablesConfig::tiny(3));
    let queries = webtables::seed_queries(&corpus.collection, 15, 4, 9);
    assert!(!queries.is_empty());
    for q in &queries {
        let view = corpus.collection.supersets_of(&q.entities);
        let target_id = view.ids()[view.len() / 3];
        let target = corpus.collection.set(target_id).clone();
        let mut session = Session::over(view, KLp::<Height>::new(2));
        let outcome = session.run(&mut SimulatedOracle::new(&target)).expect("ok");
        assert_eq!(outcome.discovered(), Some(target_id));
        // Worst case is n−1; the paper expects ≈ log k for overlapping sets.
        assert!(
            outcome.questions < q.n_candidates,
            "{} questions for {} candidates",
            outcome.questions,
            q.n_candidates
        );
    }
}

#[test]
fn baseball_pipeline_recovers_target_queries() {
    let table = people_table_sized(2_500, 5);
    let refs = ReferenceValues::paper_defaults();
    for target in target_queries(&table).iter().take(3) {
        let rows = target.query.evaluate(&table);
        assert!(rows.len() >= 2, "{}", target.id);
        let examples = [rows[0], rows[rows.len() - 1]];
        let cands = generate_candidates(&table, &examples, &refs);
        let target_set = EntitySet::from_raw(rows.iter().copied());
        let mut session = Session::over(
            cands.collection.full_view(),
            KLp::<AvgDepth>::limited(3, 10),
        );
        let outcome = session
            .run(&mut SimulatedOracle::new(&target_set))
            .expect("ok");
        let found = outcome.discovered().expect("resolves");
        assert_eq!(
            cands.collection.set(found),
            &target_set,
            "{}: discovered a different output",
            target.id
        );
        // ~log2 of the candidate count.
        let bound = (cands.collection.len() as f64).log2() * 3.0 + 4.0;
        assert!(
            (outcome.questions as f64) < bound,
            "{}: {} questions for {} candidates",
            target.id,
            outcome.questions,
            cands.collection.len()
        );
    }
}

#[test]
fn pruned_and_unpruned_lookahead_build_equal_quality_trees() {
    for seed in 0..3u64 {
        let collection = generate_copy_add(&CopyAddConfig {
            n_sets: 24,
            size_range: (5, 9),
            overlap: 0.8,
            seed,
        });
        let view = collection.full_view();
        for k in [2u32, 3] {
            let t_klp = build_tree(&view, &mut KLp::<AvgDepth>::new(k)).unwrap();
            let t_ref = build_tree(&view, &mut GainK::<AvgDepth>::new(k)).unwrap();
            assert_eq!(
                t_klp.total_depth(),
                t_ref.total_depth(),
                "seed {seed} k {k}"
            );
            let t_klp_h = build_tree(&view, &mut KLp::<Height>::new(k)).unwrap();
            let t_ref_h = build_tree(&view, &mut GainK::<Height>::new(k)).unwrap();
            assert_eq!(t_klp_h.height(), t_ref_h.height(), "seed {seed} k {k}");
        }
    }
}

#[test]
fn deeper_lookahead_never_hurts_much() {
    // On structured collections k=3 should be ≤ k=1 tree cost; allow exact
    // ties. (Lookahead is still greedy, so this is a tendency the paper
    // measures, not a theorem — the seeds here are fixed and verified.)
    let collection = generate_copy_add(&CopyAddConfig {
        n_sets: 64,
        size_range: (6, 10),
        overlap: 0.9,
        seed: 11,
    });
    let view = collection.full_view();
    let t1 = build_tree(&view, &mut KLp::<AvgDepth>::new(1)).unwrap();
    let t3 = build_tree(&view, &mut KLp::<AvgDepth>::new(3)).unwrap();
    assert!(
        t3.total_depth() <= t1.total_depth(),
        "k=3 {} vs k=1 {}",
        t3.total_depth(),
        t1.total_depth()
    );
}

#[test]
fn subcollection_views_compose_with_sessions() {
    let collection = generate_copy_add(&CopyAddConfig {
        n_sets: 40,
        size_range: (5, 8),
        overlap: 0.7,
        seed: 8,
    });
    // Restrict to an arbitrary half of the sets, then discover within it.
    let ids: Vec<_> = collection
        .iter()
        .map(|(id, _)| id)
        .filter(|id| id.0 % 2 == 0)
        .collect();
    let view = SubCollection::from_ids(&collection, ids.clone());
    let target = collection.set(ids[3]).clone();
    let mut session = Session::over(view, MostEven::new());
    let outcome = session.run(&mut SimulatedOracle::new(&target)).expect("ok");
    assert_eq!(outcome.discovered(), Some(ids[3]));
}

#[test]
fn strategies_share_a_common_interface() {
    let collection = generate_copy_add(&CopyAddConfig {
        n_sets: 30,
        size_range: (5, 8),
        overlap: 0.8,
        seed: 21,
    });
    let view = collection.full_view();
    let mut all: Vec<Box<dyn SelectionStrategy>> = vec![
        Box::new(MostEven::new()),
        Box::new(InfoGain::new()),
        Box::new(KLp::<AvgDepth>::new(2)),
        Box::new(KLp::<Height>::limited(3, 5)),
        Box::new(KLp::<AvgDepth>::limited_variable(3, 5)),
        Box::new(GainK::<AvgDepth>::new(2)),
    ];
    for s in &mut all {
        let tree = build_tree(&view, s.as_mut()).expect("tree");
        tree.validate(&view).expect("valid");
        assert!(!s.name().is_empty());
    }
}
