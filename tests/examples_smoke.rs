//! Smoke test: every example under `examples/` compiles.
//!
//! `cargo test` already builds example targets of this package, but this
//! test keeps the guarantee explicit (and covers workspaces invoked with
//! `--test examples_smoke` alone) by driving `cargo build --examples`
//! for the whole workspace.

use std::path::Path;
use std::process::Command;

#[test]
fn all_examples_build() {
    let manifest_dir = env!("CARGO_MANIFEST_DIR");

    let examples_dir = Path::new(manifest_dir).join("examples");
    let n_examples = std::fs::read_dir(&examples_dir)
        .expect("examples/ exists")
        .filter(|e| {
            e.as_ref()
                .is_ok_and(|e| e.path().extension().is_some_and(|x| x == "rs"))
        })
        .count();
    assert!(
        n_examples >= 4,
        "expected the seed's examples to be present"
    );

    let status = Command::new(env!("CARGO"))
        .args(["build", "--examples", "--quiet"])
        .current_dir(manifest_dir)
        .status()
        .expect("cargo is runnable");
    assert!(
        status.success(),
        "`cargo build --examples` failed: {status}"
    );
}
