//! Integration tests for the §6/§7 session modes on realistic (synthetic)
//! workloads: non-uniform priors, multiple-choice questions, error
//! recovery, entity collapsing, and the analysis module's predictions.

use interactive_set_discovery::core::analysis::CollectionProfile;
use interactive_set_discovery::core::builder::build_tree;
use interactive_set_discovery::core::discovery::FaultInjectingOracle;
use interactive_set_discovery::core::engine::Engine;
use interactive_set_discovery::core::strategy::{MostEven, WeightedMostEven};
use interactive_set_discovery::core::transform::collapse_equivalent_entities;
use interactive_set_discovery::core::weights::{expected_depth, WeightTable};
use interactive_set_discovery::core::Answer;
use interactive_set_discovery::synth::copyadd::{generate_copy_add, CopyAddConfig};
use interactive_set_discovery::synth::webtables::{self, WebTablesConfig};
use std::sync::Arc;

fn synth(n: usize, overlap: f64, seed: u64) -> interactive_set_discovery::core::Collection {
    generate_copy_add(&CopyAddConfig {
        n_sets: n,
        size_range: (6, 10),
        overlap,
        seed,
    })
}

#[test]
fn weighted_priors_beat_uniform_trees_under_skew() {
    let collection = synth(48, 0.85, 3);
    let view = collection.full_view();
    // ~80% of the probability mass on five "hot" sets (integer odds 172:5
    // per set ≈ the old 0.16 vs 0.2/43 float prior).
    let mut raw = vec![5u64; collection.len()];
    for w in raw.iter_mut().take(5) {
        *w = 172;
    }
    let prior = Arc::new(WeightTable::new(&raw).unwrap());
    let uniform_tree = build_tree(&view, &mut MostEven::new()).unwrap();
    let weighted_tree = build_tree(&view, &mut WeightedMostEven::new(Arc::clone(&prior))).unwrap();
    weighted_tree.validate(&view).unwrap();
    let e_uniform = expected_depth(&uniform_tree, &prior);
    let e_weighted = expected_depth(&weighted_tree, &prior);
    assert!(
        e_weighted <= e_uniform + 1e-9,
        "weighted {e_weighted:.3} vs uniform {e_uniform:.3}"
    );
}

#[test]
fn multiple_choice_questions_cut_interactions_on_synthetic_data() {
    // §7: a b-option screen answered with first-applicable-option carries
    // more than one bit, so screens-to-resolution drop vs single questions.
    let collection = synth(64, 0.8, 5);
    let mut total_single = 0usize;
    let mut total_batched = 0usize;
    for (target_id, target) in collection.iter().take(12) {
        let mut single = Engine::new(&collection, &[], MostEven::new());
        while let Some(e) = single.next_question() {
            let a = if target.contains(e) {
                Answer::Yes
            } else {
                Answer::No
            };
            single.answer(e, a);
        }
        assert_eq!(single.outcome().discovered(), Some(target_id));
        total_single += single.questions_asked();

        let mut batched = Engine::new(&collection, &[], MostEven::new());
        let mut screens = 0usize;
        loop {
            let batch = batched.next_questions(4);
            if batch.is_empty() {
                break;
            }
            let choice = batch
                .iter()
                .position(|&e| target.contains(e))
                .unwrap_or(batch.len());
            batched.answer_choice(&batch, choice, true);
            screens += 1;
        }
        assert_eq!(batched.outcome().discovered(), Some(target_id));
        total_batched += screens;
    }
    // First-applicable screens carry between 1 and log₂(b+1) bits each
    // depending on which option hits, so the aggregate saving is real but
    // well short of the idealized b-way split; require a ≥10% reduction.
    assert!(
        total_batched * 10 <= total_single * 9,
        "batched screens {total_batched} vs single questions {total_single}"
    );
}

#[test]
fn recovery_handles_every_single_error_position() {
    let collection = synth(24, 0.8, 9);
    let (id, target) = collection.iter().nth(7).unwrap();
    // Clean run to learn the question count.
    let mut probe = Engine::new(&collection, &[], MostEven::new());
    probe.set_backtracking(true);
    let clean_q = probe
        .run_confirming(&mut FaultInjectingOracle::new(target, id, vec![]), 1000)
        .unwrap()
        .questions;
    // Inject a single error at every possible position; all must recover.
    for wrong_at in 0..clean_q {
        let mut session = Engine::new(&collection, &[], MostEven::new());
        session.set_backtracking(true);
        let mut oracle = FaultInjectingOracle::new(target, id, vec![wrong_at]);
        let out = session
            .run_confirming(&mut oracle, clean_q * 4)
            .unwrap_or_else(|e| panic!("error at {wrong_at}: {e}"));
        assert_eq!(out.discovered(), Some(id), "error at question {wrong_at}");
        assert!(session.backtracks() >= 1, "error at question {wrong_at}");
    }
}

#[test]
fn collapsing_web_corpus_preserves_discovery() {
    let corpus = webtables::generate(&WebTablesConfig::tiny(13));
    let collapsed = collapse_equivalent_entities(&corpus.collection);
    assert!(collapsed.collection.distinct_entities() <= corpus.collection.distinct_entities());
    assert_eq!(collapsed.collection.len(), corpus.collection.len());
    // Trees over both have identical cost for the same strategy.
    use interactive_set_discovery::core::cost::AvgDepth;
    use interactive_set_discovery::core::lookahead::KLp;
    let ids: Vec<_> = corpus
        .collection
        .iter()
        .map(|(id, _)| id)
        .take(40)
        .collect();
    let v1 =
        interactive_set_discovery::core::SubCollection::from_ids(&corpus.collection, ids.clone());
    let v2 = interactive_set_discovery::core::SubCollection::from_ids(&collapsed.collection, ids);
    let t1 = build_tree(&v1, &mut KLp::<AvgDepth>::new(2)).unwrap();
    let t2 = build_tree(&v2, &mut KLp::<AvgDepth>::new(2)).unwrap();
    assert_eq!(t1.total_depth(), t2.total_depth());
}

#[test]
fn profile_tracks_overlap_knob() {
    let loose = CollectionProfile::new(&synth(80, 0.3, 1), 300, 1);
    let tight = CollectionProfile::new(&synth(80, 0.95, 1), 300, 1);
    assert!(tight.avg_pairwise_jaccard > loose.avg_pairwise_jaccard * 2.0);
    assert!(tight.distinct_entities < loose.distinct_entities);
    assert_eq!(loose.n_sets, 80);
    assert!(loose.lb_max_questions >= 7); // ⌈log₂ 80⌉ = 7
}
