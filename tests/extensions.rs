//! Integration tests for the §6/§7 extensions on realistic (synthetic)
//! workloads: non-uniform priors, batch questions, error recovery, entity
//! collapsing, and the analysis module's predictions.

use interactive_set_discovery::core::analysis::CollectionProfile;
use interactive_set_discovery::core::builder::build_tree;
use interactive_set_discovery::core::ext::batch::run_batched;
use interactive_set_discovery::core::ext::noisy::{FaultInjectingOracle, RecoveringSession};
use interactive_set_discovery::core::ext::weighted::{expected_depth, Priors, WeightedMostEven};
use interactive_set_discovery::core::strategy::MostEven;
use interactive_set_discovery::core::transform::collapse_equivalent_entities;
use interactive_set_discovery::synth::copyadd::{generate_copy_add, CopyAddConfig};
use interactive_set_discovery::synth::webtables::{self, WebTablesConfig};

fn synth(n: usize, overlap: f64, seed: u64) -> interactive_set_discovery::core::Collection {
    generate_copy_add(&CopyAddConfig {
        n_sets: n,
        size_range: (6, 10),
        overlap,
        seed,
    })
}

#[test]
fn weighted_priors_beat_uniform_trees_under_skew() {
    let collection = synth(48, 0.85, 3);
    let view = collection.full_view();
    // 80% of the probability mass on five "hot" sets.
    let mut raw = vec![0.2 / 43.0; collection.len()];
    for w in raw.iter_mut().take(5) {
        *w = 0.16;
    }
    let priors = Priors::from_weights(raw).unwrap();
    let uniform_tree = build_tree(&view, &mut MostEven::new()).unwrap();
    let weighted_tree = build_tree(&view, &mut WeightedMostEven::new(priors.clone())).unwrap();
    weighted_tree.validate(&view).unwrap();
    let e_uniform = expected_depth(&uniform_tree, &priors);
    let e_weighted = expected_depth(&weighted_tree, &priors);
    assert!(
        e_weighted <= e_uniform + 1e-9,
        "weighted {e_weighted:.3} vs uniform {e_uniform:.3}"
    );
}

#[test]
fn batched_questions_cut_interactions_on_synthetic_data() {
    let collection = synth(64, 0.8, 5);
    let view = collection.full_view();
    let mut total_single = 0usize;
    let mut total_batched = 0usize;
    for (_, target) in collection.iter().take(12) {
        let single = run_batched(&view, target, 1);
        let batched = run_batched(&view, target, 4);
        assert_eq!(single.candidates.len(), 1);
        assert_eq!(batched.candidates, single.candidates);
        total_single += single.interactions;
        total_batched += batched.interactions;
    }
    assert!(
        total_batched * 2 <= total_single,
        "batching should at least halve screens: {total_batched} vs {total_single}"
    );
}

#[test]
fn recovery_handles_every_single_error_position() {
    let collection = synth(24, 0.8, 9);
    let (id, target) = collection.iter().nth(7).unwrap();
    // Clean run to learn the question count.
    let mut probe = RecoveringSession::new(&collection, &[], MostEven::new(), 0);
    let clean_q = probe
        .run(&mut FaultInjectingOracle::new(target, id, vec![]))
        .unwrap()
        .questions;
    // Inject a single error at every possible position; all must recover.
    for wrong_at in 0..clean_q {
        let mut session = RecoveringSession::new(&collection, &[], MostEven::new(), clean_q * 3);
        let mut oracle = FaultInjectingOracle::new(target, id, vec![wrong_at]);
        let out = session
            .run(&mut oracle)
            .unwrap_or_else(|e| panic!("error at {wrong_at}: {e}"));
        assert_eq!(out.discovered, id, "error at question {wrong_at}");
        assert!(out.backtracks >= 1);
    }
}

#[test]
fn collapsing_web_corpus_preserves_discovery() {
    let corpus = webtables::generate(&WebTablesConfig::tiny(13));
    let collapsed = collapse_equivalent_entities(&corpus.collection);
    assert!(collapsed.collection.distinct_entities() <= corpus.collection.distinct_entities());
    assert_eq!(collapsed.collection.len(), corpus.collection.len());
    // Trees over both have identical cost for the same strategy.
    use interactive_set_discovery::core::cost::AvgDepth;
    use interactive_set_discovery::core::lookahead::KLp;
    let ids: Vec<_> = corpus
        .collection
        .iter()
        .map(|(id, _)| id)
        .take(40)
        .collect();
    let v1 =
        interactive_set_discovery::core::SubCollection::from_ids(&corpus.collection, ids.clone());
    let v2 = interactive_set_discovery::core::SubCollection::from_ids(&collapsed.collection, ids);
    let t1 = build_tree(&v1, &mut KLp::<AvgDepth>::new(2)).unwrap();
    let t2 = build_tree(&v2, &mut KLp::<AvgDepth>::new(2)).unwrap();
    assert_eq!(t1.total_depth(), t2.total_depth());
}

#[test]
fn profile_tracks_overlap_knob() {
    let loose = CollectionProfile::new(&synth(80, 0.3, 1), 300, 1);
    let tight = CollectionProfile::new(&synth(80, 0.95, 1), 300, 1);
    assert!(tight.avg_pairwise_jaccard > loose.avg_pairwise_jaccard * 2.0);
    assert!(tight.distinct_entities < loose.distinct_entities);
    assert_eq!(loose.n_sets, 80);
    assert!(loose.lb_max_questions >= 7); // ⌈log₂ 80⌉ = 7
}
