//! Property tests for `core::io`: text-format round-trips over random
//! collections, plus exhaustive error-path coverage for malformed input.

use interactive_set_discovery::core::io::{parse_collection, write_collection, NamedCollection};
use interactive_set_discovery::core::SetId;
use proptest::prelude::*;

/// Random collection *text*: up to `max_sets` unique non-empty sets over a
/// small universe, named `n<i>`, with comment and blank lines sprinkled in.
fn arb_collection_text(max_sets: usize, universe: u32) -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop::collection::btree_set(0..universe, 1..=(universe as usize).min(10)),
        1..=max_sets,
    )
    .prop_map(|sets| {
        let mut text = String::from("# generated\n\n");
        for (i, set) in sets.iter().enumerate() {
            text.push_str(&format!("n{i}:"));
            for e in set {
                text.push_str(&format!(" x{e}"));
            }
            if i % 3 == 0 {
                text.push_str("  # trailing comment");
            }
            text.push('\n');
            if i % 4 == 1 {
                text.push('\n'); // blank separator line
            }
        }
        text
    })
}

/// Canonical structure of a named collection: for each set, its name and
/// the sorted member names (entity ids are assignment-order artifacts, so
/// comparisons go through names).
fn shape(named: &NamedCollection) -> Vec<(String, Vec<String>)> {
    named
        .collection
        .iter()
        .map(|(id, set)| {
            let mut members: Vec<String> = set.iter().map(|e| named.entities.display(e)).collect();
            members.sort();
            (named.set_name(id).to_string(), members)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// parse ∘ write is the identity on parsed collections:
    /// `parse(write(c))` has exactly the sets, names, and members of `c`.
    #[test]
    fn parse_write_roundtrip(text in arb_collection_text(16, 20)) {
        let first = parse_collection(&text).expect("generated text parses");
        let written = write_collection(&first);
        let second = parse_collection(&written).expect("written text parses");
        prop_assert_eq!(shape(&first), shape(&second));
        // Whatever duplicates the random input had, `first` is already
        // deduplicated, so its serialization must re-parse cleanly.
        prop_assert_eq!(second.duplicates_dropped, 0);
        // And write is idempotent from there on.
        prop_assert_eq!(write_collection(&second), written);
    }

    /// Parsing never panics on arbitrary printable input — it returns
    /// `Ok` or a structured error.
    #[test]
    fn parse_is_total_on_printable_text(
        lines in prop::collection::vec(prop::collection::vec(32u8..127, 0usize..24), 0usize..12)
    ) {
        let text = lines
            .iter()
            .map(|bytes| bytes.iter().map(|&b| b as char).collect::<String>())
            .collect::<Vec<_>>()
            .join("\n");
        let _ = parse_collection(&text);
    }
}

#[test]
fn duplicate_sets_drop_with_their_names() {
    let named = parse_collection("a: x y\nb: y x\nc: z\nd: z\n").unwrap();
    assert_eq!(named.collection.len(), 2);
    assert_eq!(named.duplicates_dropped, 2);
    assert_eq!(named.set_name(SetId(0)), "a");
    assert_eq!(named.set_name(SetId(1)), "c");
    // The round-trip of a deduplicated collection is clean.
    let again = parse_collection(&write_collection(&named)).unwrap();
    assert_eq!(shape(&named), shape(&again));
}

#[test]
fn malformed_inputs_error_with_line_context() {
    // (input, substring the error must mention)
    let cases = [
        ("", "no sets"),
        ("# only comments\n\n", "no sets"),
        (": x y\n", "line 1"),
        ("a: x\n: y\n", "line 2"),
        ("name:\n", "no members"),
        ("name: # all comment\n", "no members"),
        ("a: x\nb:\n", "line 2"),
    ];
    for (input, needle) in cases {
        let Err(err) = parse_collection(input) else {
            panic!("{input:?} should fail to parse");
        };
        let msg = err.to_string();
        assert!(
            msg.contains(needle),
            "input {input:?}: error {msg:?} should mention {needle:?}"
        );
    }
}

#[test]
fn crlf_and_whitespace_are_tolerated() {
    let named = parse_collection("a: x\ty\r\n\r\nb:  z \r\n").unwrap();
    assert_eq!(named.collection.len(), 2);
    let shape0 = shape(&named);
    let again = parse_collection(&write_collection(&named)).unwrap();
    assert_eq!(shape0, shape(&again));
}

#[test]
fn unnamed_sets_get_stable_generated_names() {
    let named = parse_collection("x y\nz\n").unwrap();
    assert_eq!(named.set_name(SetId(0)), "S0");
    assert_eq!(named.set_name(SetId(1)), "S1");
    // Generated names survive the round-trip as real names.
    let again = parse_collection(&write_collection(&named)).unwrap();
    assert_eq!(again.set_name(SetId(0)), "S0");
    assert_eq!(shape(&named), shape(&again));
}
