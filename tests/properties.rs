//! Property-based tests (proptest) over randomly generated collections:
//! the paper's lemmas and the structural invariants of the implementation.

use interactive_set_discovery::core::builder::build_tree;
use interactive_set_discovery::core::cost::{imbalance, AvgDepth, CostModel, Height};
use interactive_set_discovery::core::discovery::{Session, SimulatedOracle};
use interactive_set_discovery::core::lookahead::{GainK, KLp};
use interactive_set_discovery::core::optimal::optimal_cost;
use interactive_set_discovery::core::strategy::{
    IndistinguishablePairs, InfoGain, MostEven, SelectionStrategy,
};
use interactive_set_discovery::core::subcollection::{CountScratch, SubStorage};
use interactive_set_discovery::core::Collection;
use interactive_set_discovery::core::EntityId;
use proptest::prelude::*;

/// Random small collections: up to `max_sets` sets over a universe of
/// `universe` entities, deduplicated by construction.
fn arb_collection(max_sets: usize, universe: u32) -> impl Strategy<Value = Collection> {
    prop::collection::vec(
        prop::collection::btree_set(0..universe, 1..=(universe as usize).min(12)),
        2..=max_sets,
    )
    .prop_filter_map("collections must have ≥2 unique sets", |sets| {
        let raw: Vec<Vec<u32>> = sets.into_iter().map(|s| s.into_iter().collect()).collect();
        match Collection::from_raw_sets(raw) {
            Ok(c) if c.len() >= 2 => Some(c),
            _ => None,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 4.1: LB_k(C) is non-decreasing in k, for both metrics.
    #[test]
    fn lb_k_is_monotone_in_k(c in arb_collection(10, 16)) {
        let view = c.full_view();
        let mut prev_ad = 0u64;
        let mut prev_h = 0u64;
        for k in 1..=4u32 {
            let (_, ad) = KLp::<AvgDepth>::new(k).bound(&view).expect("informative");
            let (_, h) = KLp::<Height>::new(k).bound(&view).expect("informative");
            prop_assert!(ad >= prev_ad, "AD k={} {} < {}", k, ad, prev_ad);
            prop_assert!(h >= prev_h, "H k={} {} < {}", k, h, prev_h);
            prev_ad = ad;
            prev_h = h;
        }
    }

    /// Lemma 4.4 safety: pruning, fingerprint-keyed memoization, and
    /// counting-pass partition dedup never change the computed k-step bound
    /// *or* the selected argmin (k-LP vs the exhaustive gain-k reference,
    /// which deduplicates nothing), for k = 1..4 and both metrics.
    #[test]
    fn pruning_is_lossless(c in arb_collection(10, 14)) {
        let view = c.full_view();
        for k in 1..=4u32 {
            let klp = KLp::<AvgDepth>::new(k).bound(&view);
            let gk = GainK::<AvgDepth>::new(k).bound(&view);
            prop_assert_eq!(klp, gk, "AD k={}", k);
            let klp_h = KLp::<Height>::new(k).bound(&view);
            let gk_h = GainK::<Height>::new(k).bound(&view);
            prop_assert_eq!(klp_h, gk_h, "H k={}", k);
        }
    }

    /// Fingerprint-memo soundness: a solver reused across overlapping
    /// subviews (warm cache full of positive *and* negative entries keyed
    /// by `(fingerprint, len, k)`) answers every subview exactly like a
    /// cold solver. A fingerprint collision, or a negative entry that
    /// short-circuits outside its recorded bound, would diverge here.
    #[test]
    fn warm_memo_matches_cold_solver_on_subviews(c in arb_collection(9, 12), k in 2..=3u32) {
        let view = c.full_view();
        let mut warm = KLp::<AvgDepth>::new(k);
        warm.bound(&view);
        for e in 0..c.universe() {
            let entity = interactive_set_discovery::core::EntityId(e);
            let (yes, no) = view.partition(entity);
            for side in [yes, no] {
                if side.len() < 2 {
                    continue;
                }
                let warm_ans = warm.bound(&side);
                let cold_ans = KLp::<AvgDepth>::new(k).bound(&side);
                prop_assert_eq!(warm_ans, cold_ans, "entity {} k={}", e, k);
            }
        }
    }

    /// Lemma 4.3: InfoGain, indistinguishable pairs and most-even select
    /// entities with the same (optimal) partition imbalance.
    #[test]
    fn greedy_strategies_agree_on_imbalance(c in arb_collection(12, 16)) {
        let view = c.full_view();
        let n = view.len() as u64;
        let mut scratch = CountScratch::new();
        let inf = view.informative_entities(&mut scratch);
        prop_assume!(!inf.is_empty());
        let imb_of = |e| {
            let ec = inf.iter().find(|ec| ec.entity == e).expect("informative");
            imbalance(n, ec.count as u64)
        };
        let best = inf.iter().map(|ec| imbalance(n, ec.count as u64)).min().unwrap();
        prop_assert_eq!(imb_of(MostEven::new().select(&view).unwrap()), best);
        prop_assert_eq!(imb_of(InfoGain::new().select(&view).unwrap()), best);
        prop_assert_eq!(
            imb_of(IndistinguishablePairs::new().select(&view).unwrap()),
            best
        );
    }

    /// Every strategy builds a structurally valid full binary tree whose
    /// leaves are exactly the collection.
    #[test]
    fn trees_validate(c in arb_collection(12, 16), k in 1..=3u32) {
        let view = c.full_view();
        let tree = build_tree(&view, &mut KLp::<AvgDepth>::new(k)).expect("tree");
        tree.validate(&view).expect("valid");
        prop_assert_eq!(tree.n_leaves(), c.len());
        prop_assert_eq!(tree.n_internal(), c.len() - 1);
        // Tree costs can never beat the LB₀ bounds of §4.1.
        prop_assert!(tree.total_depth() >= AvgDepth::lb0(c.len() as u64));
        prop_assert!(u64::from(tree.height()) >= Height::lb0(c.len() as u64));
    }

    /// k = n lookahead reaches the exact DP optimum (the §4.4.1 claim in
    /// its unconditional form).
    #[test]
    fn full_lookahead_is_optimal(c in arb_collection(7, 10)) {
        let view = c.full_view();
        let k = c.len() as u32;
        let tree = build_tree(&view, &mut KLp::<AvgDepth>::new(k)).expect("tree");
        let opt = optimal_cost::<AvgDepth>(&view).expect("small");
        prop_assert_eq!(tree.total_depth(), opt);
        let tree_h = build_tree(&view, &mut KLp::<Height>::new(k)).expect("tree");
        let opt_h = optimal_cost::<Height>(&view).expect("small");
        prop_assert_eq!(u64::from(tree_h.height()), opt_h);
    }

    /// Discovery always terminates with exactly the target set, for every
    /// possible target, and never exceeds n − 1 questions.
    #[test]
    fn discovery_finds_every_target(c in arb_collection(10, 14)) {
        for (id, target) in c.iter() {
            let mut session = Session::over(c.full_view(), InfoGain::new());
            let outcome = session
                .run(&mut SimulatedOracle::new(target))
                .expect("truthful oracle");
            prop_assert_eq!(outcome.discovered(), Some(id));
            prop_assert!(outcome.questions < c.len());
        }
    }

    /// Tree text serialization round-trips.
    #[test]
    fn tree_text_roundtrip(c in arb_collection(10, 14)) {
        let view = c.full_view();
        let tree = build_tree(&view, &mut MostEven::new()).expect("tree");
        let text = tree.to_text();
        let back = interactive_set_discovery::core::tree::DecisionTree::from_text(&text)
            .expect("parses");
        prop_assert_eq!(back.to_text(), text);
        back.validate(&view).expect("still valid");
    }

    /// Partition splits the view exactly: sizes add up and membership is
    /// consistent with the inverted index.
    #[test]
    fn partition_is_exact(c in arb_collection(12, 16), e in 0..16u32) {
        let view = c.full_view();
        let entity = interactive_set_discovery::core::EntityId(e);
        let (yes, no) = view.partition(entity);
        prop_assert_eq!(yes.len() + no.len(), view.len());
        for &id in yes.ids() {
            prop_assert!(c.set(id).contains(entity));
        }
        for &id in no.ids() {
            prop_assert!(!c.set(id).contains(entity));
        }
    }

    /// The bitmap partition kernels agree exactly — ids, lengths, bitmaps,
    /// and fingerprints — with the id-vector merge reference, for every
    /// entity (including absent ones) on the full view and a random
    /// subview.
    #[test]
    fn bitmap_partition_agrees_with_merge_reference(
        c in arb_collection(12, 16),
        mask in 0u64..1 << 12,
    ) {
        let full = c.full_view();
        let sub = full.filter(|id| mask >> (id.0 % 12) & 1 == 1);
        for view in [&full, &sub] {
            for e in 0..=c.universe() {
                let entity = EntityId(e);
                let (y1, n1) = view.partition(entity);
                let (y2, n2) =
                    view.partition_into_merge(entity, SubStorage::new(), SubStorage::new());
                prop_assert_eq!(y1.len(), y2.len(), "yes len, entity {}", e);
                prop_assert_eq!(y1.ids(), y2.ids(), "yes ids, entity {}", e);
                prop_assert_eq!(n1.ids(), n2.ids(), "no ids, entity {}", e);
                prop_assert_eq!(y1.fingerprint(), y2.fingerprint());
                prop_assert_eq!(n1.fingerprint(), n2.fingerprint());
                prop_assert_eq!(y1.bitmap().words(), y2.bitmap().words());
                prop_assert_eq!(n1.bitmap().words(), n2.bitmap().words());
                prop_assert_eq!(y1.total_elements() + n1.total_elements(),
                    view.total_elements());
                prop_assert_eq!(view.membership_fp(entity), y1.fingerprint());
            }
        }
    }

    /// The postings-sweep counting kernel agrees exactly — entities,
    /// counts, membership fingerprints — with the element-pass reference
    /// on random collections and random subviews.
    #[test]
    fn postings_counting_agrees_with_element_pass(
        c in arb_collection(12, 16),
        mask in 0u64..1 << 12,
    ) {
        let mut scratch = CountScratch::new();
        let full = c.full_view();
        let sub = full.filter(|id| mask >> (id.0 % 12) & 1 == 1);
        for view in [&full, &sub] {
            let mut elements = Vec::new();
            view.count_entities_with_fp_elements(&mut scratch, &mut elements);
            elements.sort_unstable_by_key(|s| s.entity);
            let mut postings = Vec::new();
            view.count_entities_with_fp_postings(&mut postings);
            prop_assert_eq!(&elements, &postings, "view of {} sets", view.len());
            // The auto-dispatched informative pass must match the reference
            // filtered the same way.
            let mut informative = Vec::new();
            view.informative_with_fp(&mut scratch, &mut informative);
            informative.sort_unstable_by_key(|s| s.entity);
            let expect: Vec<_> = elements
                .into_iter()
                .filter(|s| (s.count as usize) < view.len())
                .collect();
            prop_assert_eq!(informative, expect);
        }
    }

    /// The parallel selection loop is bit-identical to the sequential one:
    /// same bound, same argmin, and the same entity at every node of every
    /// tree, across beam variants, metrics, and lookahead depths.
    #[test]
    fn parallel_klp_is_bit_identical_to_sequential(
        c in arb_collection(10, 14),
        k in 2..=3u32,
    ) {
        let view = c.full_view();
        let seq_bound = KLp::<AvgDepth>::new(k).with_threads(1).bound(&view);
        let par_bound = KLp::<AvgDepth>::new(k)
            .with_threads(4)
            .with_parallel_gate(1, 0)
            .bound(&view);
        prop_assert_eq!(seq_bound, par_bound, "AD bound, k={}", k);
        let seq_h = KLp::<Height>::new(k).with_threads(1).bound(&view);
        let par_h = KLp::<Height>::new(k)
            .with_threads(4)
            .with_parallel_gate(1, 0)
            .bound(&view);
        prop_assert_eq!(seq_h, par_h, "H bound, k={}", k);

        let mut seq_tree = KLp::<AvgDepth>::new(k).with_threads(1);
        let mut par_tree = KLp::<AvgDepth>::new(k).with_threads(4).with_parallel_gate(1, 0);
        prop_assert_eq!(
            build_tree(&view, &mut seq_tree).expect("tree").to_text(),
            build_tree(&view, &mut par_tree).expect("tree").to_text(),
            "full k-LP tree, k={}", k
        );
        let mut seq_beam = KLp::<Height>::limited(k, 3).with_threads(1);
        let mut par_beam = KLp::<Height>::limited(k, 3)
            .with_threads(4)
            .with_parallel_gate(1, 0);
        prop_assert_eq!(
            build_tree(&view, &mut seq_beam).expect("tree").to_text(),
            build_tree(&view, &mut par_beam).expect("tree").to_text(),
            "k-LPLE tree, k={}", k
        );
        let mut seq_lve = KLp::<AvgDepth>::limited_variable(k, 3).with_threads(1);
        let mut par_lve = KLp::<AvgDepth>::limited_variable(k, 3)
            .with_threads(4)
            .with_parallel_gate(1, 0);
        prop_assert_eq!(
            build_tree(&view, &mut seq_lve).expect("tree").to_text(),
            build_tree(&view, &mut par_lve).expect("tree").to_text(),
            "k-LPLVE tree, k={}", k
        );
    }
}

/// The kernels must also agree across the dense/sparse postings split,
/// which only exists past 64 sets — covered deterministically with a
/// copy-add collection too big for the random generator.
#[test]
fn bitmap_kernels_agree_on_large_mixed_density_collection() {
    use interactive_set_discovery::synth::copyadd::{generate_copy_add, CopyAddConfig};
    let c = generate_copy_add(&CopyAddConfig {
        n_sets: 220,
        size_range: (8, 14),
        overlap: 0.85,
        seed: 17,
    });
    assert!(
        c.postings().dense_entities() > 0 && c.postings().dense_entities() < c.universe() as usize,
        "fixture must exercise both representations"
    );
    let full = c.full_view();
    let sub = full.filter(|id| id.0 % 3 != 1);
    let mut scratch = CountScratch::new();
    for view in [&full, &sub] {
        let mut elements = Vec::new();
        view.count_entities_with_fp_elements(&mut scratch, &mut elements);
        elements.sort_unstable_by_key(|s| s.entity);
        let mut postings = Vec::new();
        view.count_entities_with_fp_postings(&mut postings);
        assert_eq!(elements, postings);
        for e in (0..c.universe()).step_by(7) {
            let entity = EntityId(e);
            let (y1, n1) = view.partition(entity);
            let (y2, n2) = view.partition_into_merge(entity, SubStorage::new(), SubStorage::new());
            assert_eq!(y1.ids(), y2.ids(), "entity {e}");
            assert_eq!(n1.ids(), n2.ids(), "entity {e}");
            assert_eq!(y1.fingerprint(), y2.fingerprint());
            assert_eq!(n1.fingerprint(), n2.fingerprint());
        }
    }
    // And the parallel selection stays bit-identical at this scale.
    let view = c.full_view();
    let seq = KLp::<AvgDepth>::new(2).with_threads(1).bound(&view);
    let par = KLp::<AvgDepth>::new(2)
        .with_threads(4)
        .with_parallel_gate(1, 0)
        .bound(&view);
    assert_eq!(seq, par);
}
